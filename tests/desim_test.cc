// Precise tests of the discrete-event SM simulator on hand-built traces:
// known event sequences must produce exactly predictable makespans, and
// the pipeline primitives must block/overlap as specified. Also covers the
// timeline capture/rendering.
#include <gtest/gtest.h>

#include "sim/desim.h"
#include "sim/launch.h"
#include "sim/timeline.h"
#include "support/check.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace {

using sim::DesimParams;
using sim::EventKind;
using sim::ThreadblockTrace;
using sim::TraceEvent;

// A spec with round numbers so expected cycle counts are exact.
target::GpuSpec UnitSpec() {
  target::GpuSpec spec;
  spec.num_sms = 1;
  spec.tc_flops_per_sm_per_cycle = 400.0;  // 100 per sub-partition
  spec.lds_bytes_per_cycle_per_sm = 100.0;
  spec.llc_bw_bytes_per_cycle = 100.0;
  spec.dram_bw_bytes_per_cycle = 100.0;
  spec.dram_write_bw_bytes_per_cycle = 100.0;
  spec.llc_latency_cycles = 10.0;
  spec.dram_latency_cycles = 50.0;
  spec.smem_latency_cycles = 5.0;
  spec.copy_issue_bytes_per_cycle = 1000.0;
  spec.sync_overhead_cycles = 0.0;
  spec.launch_overhead_cycles = 0.0;
  return spec;
}

TraceEvent Mma(int64_t flops) {
  TraceEvent e;
  e.kind = EventKind::kMma;
  e.flops = flops;
  return e;
}

TraceEvent CopySync(int64_t bytes) {
  TraceEvent e;
  e.kind = EventKind::kCopySync;
  e.bytes = bytes;
  e.src_scope = ir::MemScope::kGlobal;
  e.dst_scope = ir::MemScope::kShared;
  return e;
}

TraceEvent CopyAsync(int64_t bytes, int group) {
  TraceEvent e = CopySync(bytes);
  e.kind = EventKind::kCopyAsync;
  e.group = group;
  return e;
}

TraceEvent SyncEvent(EventKind kind, int group, int ahead = 0) {
  TraceEvent e;
  e.kind = kind;
  e.group = group;
  e.wait_ahead = ahead;
  return e;
}

DesimParams OneTb() {
  DesimParams params;
  params.threadblocks = 1;
  return params;
}

ThreadblockTrace OneWarp(std::vector<TraceEvent> events) {
  ThreadblockTrace trace;
  trace.num_warps = 1;
  trace.warps.push_back({std::move(events)});
  return trace;
}

TEST(DesimTest, SingleMmaTakesFlopsOverPartitionRate) {
  // 400 flops on a 100-flop/cycle sub-partition: exactly 4 cycles.
  double makespan =
      sim::SimulateBatch(OneWarp({Mma(400)}), UnitSpec(), OneTb());
  EXPECT_DOUBLE_EQ(makespan, 4.0);
}

TEST(DesimTest, SyncCopyChargesTransferAndLatencyAtNextUse) {
  // 100B at 100 B/c (+0.1 issue) + DRAM latency 50, consumed by the MMA:
  // the MMA starts after the load lands and takes 1 cycle.
  double makespan = sim::SimulateBatch(OneWarp({CopySync(100), Mma(100)}),
                                       UnitSpec(), OneTb());
  // issue 0.1; transfer serves [0.1, 1.1]; +latency 50 -> 51.1; mma 1.
  EXPECT_NEAR(makespan, 52.1, 1e-9);
}

TEST(DesimTest, BackToBackSyncCopiesOverlapLatency) {
  // Two loads issued back to back share the latency window; only the
  // bandwidth serializes.
  double makespan = sim::SimulateBatch(
      OneWarp({CopySync(100), CopySync(100), Mma(100)}), UnitSpec(),
      OneTb());
  // issues at 0.1 and 0.2; transfers serve [0.1,1.1] and [1.1,2.1]; the
  // latencies overlap -> both ready at 52.1; mma 1.
  EXPECT_NEAR(makespan, 53.1, 1e-9);
}

TEST(DesimTest, AsyncPipelineHidesLoadLatency) {
  // Two-stage pipeline over 4 iterations, compute-bound: after the
  // prologue fill, each iteration costs its compute only.
  std::vector<TraceEvent> events;
  // Prologue: one chunk.
  events.push_back(SyncEvent(EventKind::kAcquire, 0));
  events.push_back(CopyAsync(100, 0));
  events.push_back(SyncEvent(EventKind::kCommit, 0));
  for (int i = 0; i < 4; ++i) {
    events.push_back(SyncEvent(EventKind::kAcquire, 0));
    events.push_back(CopyAsync(100, 0));
    events.push_back(SyncEvent(EventKind::kCommit, 0));
    events.push_back(SyncEvent(EventKind::kWait, 0));
    events.push_back(Mma(40000));  // 400 cycles >> load 51
    events.push_back(SyncEvent(EventKind::kRelease, 0));
  }
  DesimParams params;
  params.threadblocks = 1;
  params.groups = {{2, true}};
  double makespan =
      sim::SimulateBatch(OneWarp(std::move(events)), UnitSpec(), params);
  // First wait: chunk 0 ready at ~51.2; then 4 x 400 compute dominates.
  EXPECT_NEAR(makespan, 51.3 + 4 * 400.0, 1.0);
}

TEST(DesimTest, WithoutPipelineLoadsSerializeWithCompute) {
  // The same work, synchronous: every iteration pays load + compute.
  std::vector<TraceEvent> events;
  for (int i = 0; i < 4; ++i) {
    events.push_back(CopySync(100));
    events.push_back(Mma(40000));
  }
  double makespan = sim::SimulateBatch(OneWarp(std::move(events)), UnitSpec(),
                                       OneTb());
  // Per iteration ~ (51.1 issue+transfer+latency) + 400 compute.
  EXPECT_GT(makespan, 4 * 400.0 + 4 * 50.0);
}

TEST(DesimTest, DeadlockIsDetected) {
  // A wait with no commit ever: the stream parks forever.
  std::vector<TraceEvent> events = {SyncEvent(EventKind::kWait, 0)};
  DesimParams params;
  params.threadblocks = 1;
  params.groups = {{2, true}};
  EXPECT_THROW(sim::SimulateBatch(OneWarp(std::move(events)), UnitSpec(), params),
               CheckError);
}

TEST(DesimTest, BarrierJoinsWarps) {
  // Warp 0 computes 400 cycles then barriers; warp 1 barriers immediately.
  // Both resume at the same time; warp 1 then computes 400 more.
  ThreadblockTrace trace;
  trace.num_warps = 2;
  trace.warps.push_back({{Mma(40000), SyncEvent(EventKind::kBarrier, -1)}});
  trace.warps.push_back({{SyncEvent(EventKind::kBarrier, -1), Mma(40000)}});
  double makespan =
      sim::SimulateBatch(trace, UnitSpec(), OneTb());
  EXPECT_NEAR(makespan, 800.0, 1.0);
}

TEST(DesimTest, TensorCoreSubPartitionsLimitFewWarps) {
  // One warp issuing 2x400 flops takes 8 cycles (one partition); four
  // warps issuing 400 each finish in 4 (all partitions).
  ThreadblockTrace one = OneWarp({Mma(400), Mma(400)});
  EXPECT_DOUBLE_EQ(sim::SimulateBatch(one, UnitSpec(), OneTb()),
                   8.0);
  ThreadblockTrace four;
  four.num_warps = 4;
  for (int w = 0; w < 4; ++w) four.warps.push_back({{Mma(400)}});
  EXPECT_DOUBLE_EQ(sim::SimulateBatch(four, UnitSpec(), OneTb()),
                   4.0);
}

TEST(DesimTest, MoreResidentThreadblocksContendForBandwidth) {
  ThreadblockTrace trace = OneWarp({CopySync(1000), Mma(100)});
  double one = sim::SimulateBatch(trace, UnitSpec(), OneTb());
  DesimParams four_tbs = OneTb();
  four_tbs.threadblocks = 4;
  double four = sim::SimulateBatch(trace, UnitSpec(), four_tbs);
  EXPECT_GT(four, one);  // shared memory pipes serialize the transfers
}

TEST(TimelineTest, CaptureAndRender) {
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op = schedule::MakeMatmul("mm", 256, 256, 512);
  schedule::ScheduleConfig config;
  config.tile = {.tb_m = 128, .tb_n = 128, .tb_k = 32,
                 .warp_m = 64, .warp_n = 64, .warp_k = 16};
  config.smem_stages = 3;
  sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);
  sim::BatchTimeline batch = sim::CaptureTimeline(compiled, spec);
  EXPECT_FALSE(batch.timeline.spans.empty());
  EXPECT_GT(batch.timeline.makespan, 0.0);

  std::string text = sim::RenderTimeline(batch.timeline, batch.num_warps);
  // One row per warp plus the memory row.
  EXPECT_NE(text.find("tb0 warp0 |"), std::string::npos) << text;
  EXPECT_NE(text.find("tb0 warp3 |"), std::string::npos);
  EXPECT_NE(text.find("tb0 mem   |"), std::string::npos);
  // Compute and transfers must both appear.
  EXPECT_NE(text.find('M'), std::string::npos);
  EXPECT_NE(text.find('T'), std::string::npos);
}

TEST(TimelineTest, BaselineShowsBlockingLoads) {
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op = schedule::MakeMatmul("mm", 512, 256, 2048);
  schedule::ScheduleConfig config;
  config.tile = {.tb_m = 128, .tb_n = 128, .tb_k = 32,
                 .warp_m = 64, .warp_n = 64, .warp_k = 16};
  sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);
  sim::BatchTimeline batch = sim::CaptureTimeline(compiled, spec);
  std::string text = sim::RenderTimeline(batch.timeline, batch.num_warps);
  EXPECT_NE(text.find('L'), std::string::npos)
      << "synchronous baseline must expose blocking-load spans:\n" << text;
}

}  // namespace
}  // namespace alcop
