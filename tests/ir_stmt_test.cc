// Unit tests for statement construction, buffers/regions, the printer and
// structural equality.
#include <gtest/gtest.h>

#include "ir/buffer.h"
#include "ir/printer.h"
#include "ir/stmt.h"
#include "ir/structural_equal.h"
#include "support/check.h"

namespace alcop {
namespace ir {
namespace {

BufferRegion Region(const Buffer& buffer, std::vector<Expr> offsets,
                    std::vector<int64_t> sizes) {
  BufferRegion region;
  region.buffer = buffer;
  region.offsets = std::move(offsets);
  region.sizes = std::move(sizes);
  return region;
}

TEST(BufferTest, ShapeAndStrides) {
  Buffer b = MakeBuffer("b", MemScope::kShared, {3, 4, 5});
  EXPECT_EQ(b->NumElements(), 60);
  EXPECT_EQ(b->NumBytes(), 120);  // fp16 default
  EXPECT_EQ(b->Strides(), (std::vector<int64_t>{20, 5, 1}));
}

TEST(BufferTest, InvalidShapesThrow) {
  EXPECT_THROW(MakeBuffer("b", MemScope::kShared, {}), CheckError);
  EXPECT_THROW(MakeBuffer("b", MemScope::kShared, {4, 0}), CheckError);
  EXPECT_THROW(MakeBuffer("b", MemScope::kShared, {4}, 0), CheckError);
}

TEST(BufferTest, RegionValidation) {
  Buffer b = MakeBuffer("b", MemScope::kShared, {4, 8});
  BufferRegion ok = Region(b, {Int(0), Int(0)}, {4, 8});
  EXPECT_NO_THROW(ValidateRegion(ok));
  BufferRegion rank_mismatch = Region(b, {Int(0)}, {4, 8});
  EXPECT_THROW(ValidateRegion(rank_mismatch), CheckError);
  BufferRegion too_big = Region(b, {Int(0), Int(0)}, {5, 8});
  EXPECT_THROW(ValidateRegion(too_big), CheckError);
}

TEST(StmtTest, CopyElementCountMismatchThrows) {
  Buffer a = MakeBuffer("a", MemScope::kGlobal, {16});
  Buffer b = MakeBuffer("b", MemScope::kShared, {8});
  EXPECT_THROW(Copy(FullRegion(b), FullRegion(a)), CheckError);
}

TEST(StmtTest, MmaShapeChecks) {
  Buffer c = MakeBuffer("c", MemScope::kAccumulator, {16, 8}, 4);
  Buffer a = MakeBuffer("a", MemScope::kRegister, {16, 4});
  Buffer b = MakeBuffer("b", MemScope::kRegister, {8, 4});
  Stmt mma = Mma(FullRegion(c), FullRegion(a), FullRegion(b));
  const auto* node = static_cast<const MmaNode*>(mma.get());
  EXPECT_EQ(node->m(), 16);
  EXPECT_EQ(node->n(), 8);
  EXPECT_EQ(node->k(), 4);
  EXPECT_EQ(node->Flops(), 2 * 16 * 8 * 4);

  Buffer bad_b = MakeBuffer("b", MemScope::kRegister, {8, 2});
  EXPECT_THROW(Mma(FullRegion(c), FullRegion(a), FullRegion(bad_b)),
               CheckError);
}

TEST(StmtTest, MmaLeadingDimsMustBeSingleton) {
  Buffer c = MakeBuffer("c", MemScope::kAccumulator, {2, 16, 8}, 4);
  Buffer a = MakeBuffer("a", MemScope::kRegister, {16, 4});
  Buffer b = MakeBuffer("b", MemScope::kRegister, {8, 4});
  EXPECT_THROW(Mma(FullRegion(c), FullRegion(a), FullRegion(b)), CheckError);
}

TEST(StmtTest, FlatBlockFlattensAndDropsNulls) {
  Buffer b = MakeBuffer("b", MemScope::kShared, {8});
  Stmt fill = Fill(FullRegion(b), 0.0);
  Stmt nested = Block({fill, Block({fill, fill})});
  Stmt flat = FlatBlock({nullptr, nested, fill});
  ASSERT_EQ(flat->kind, StmtKind::kBlock);
  EXPECT_EQ(static_cast<const BlockNode*>(flat.get())->seq.size(), 4u);

  Stmt single = FlatBlock({fill});
  EXPECT_EQ(single.get(), fill.get());
}

TEST(PrinterTest, StatementForms) {
  Buffer src = MakeBuffer("src", MemScope::kGlobal, {4, 8});
  Buffer buf = MakeBuffer("buf", MemScope::kShared, {8});
  Var i = MakeVar("i");
  Stmt program = Block({
      Alloc(buf),
      For(i, 4, ForKind::kSerial,
          Copy(FullRegion(buf), Region(src, {i, Int(0)}, {1, 8}))),
      Barrier(),
      Sync(SyncKind::kConsumerWait, 2, {buf}, 1),
  });
  std::string text = ToString(program);
  EXPECT_NE(text.find("alloc buf: shared fp16[8]"), std::string::npos) << text;
  EXPECT_NE(text.find("for i in 0..4 serial {"), std::string::npos);
  EXPECT_NE(text.find("copy buf[0][8] <- src[i, 0][1, 8]"), std::string::npos);
  EXPECT_NE(text.find("barrier"), std::string::npos);
  EXPECT_NE(text.find("buf.consumer_wait(ahead=1)  @group2"),
            std::string::npos);
}

TEST(PrinterTest, AccumulateCopyPrintsPlusEquals) {
  Buffer a = MakeBuffer("a", MemScope::kGlobal, {8});
  Buffer b = MakeBuffer("b", MemScope::kGlobal, {8});
  std::string text = ToString(AccumulateCopy(FullRegion(a), FullRegion(b)));
  EXPECT_NE(text.find("a[0][8] += b[0][8]"), std::string::npos) << text;
}

TEST(StructuralEqualTest, AlphaEquivalentLoops) {
  Buffer src = MakeBuffer("src", MemScope::kGlobal, {4, 8});
  Buffer buf = MakeBuffer("buf", MemScope::kShared, {8});
  auto make = [&](const std::string& var_name) {
    Var v = MakeVar(var_name);
    return For(v, 4, ForKind::kSerial,
               Copy(FullRegion(buf), Region(src, {v, Int(0)}, {1, 8})));
  };
  EXPECT_TRUE(StructuralEqual(make("i"), make("j")));
}

TEST(StructuralEqualTest, DistinguishesForKind) {
  Buffer buf = MakeBuffer("buf", MemScope::kShared, {8});
  Var i = MakeVar("i");
  Var j = MakeVar("j");
  Stmt serial = For(i, 4, ForKind::kSerial, Fill(FullRegion(buf), 0.0));
  Stmt warp = For(j, 4, ForKind::kWarp, Fill(FullRegion(buf), 0.0));
  EXPECT_FALSE(StructuralEqual(serial, warp));
}

TEST(StructuralEqualTest, DistinguishesAsyncAndGroups) {
  Buffer src = MakeBuffer("src", MemScope::kGlobal, {8});
  Buffer buf = MakeBuffer("buf", MemScope::kShared, {8});
  Stmt plain = Copy(FullRegion(buf), FullRegion(src));
  auto async = std::make_shared<CopyNode>(
      *static_cast<const CopyNode*>(plain.get()));
  async->is_async = true;
  EXPECT_FALSE(StructuralEqual(plain, Stmt(async)));
}

TEST(StructuralEqualTest, FreeVariablesMatchByIdentity) {
  Var i = MakeVar("i");
  Var j = MakeVar("j");
  EXPECT_TRUE(StructuralEqual(Add(i, Int(1)), Add(i, Int(1))));
  EXPECT_FALSE(StructuralEqual(Add(i, Int(1)), Add(j, Int(1))));
}

TEST(EwiseTest, FunctionValues) {
  EXPECT_EQ(ApplyEwise(EwiseOp::kRelu, 0.0, -2.0), 0.0);
  EXPECT_EQ(ApplyEwise(EwiseOp::kRelu, 0.0, 3.0), 3.0);
  EXPECT_EQ(ApplyEwise(EwiseOp::kScale, 0.5, 8.0), 4.0);
  EXPECT_EQ(ApplyEwise(EwiseOp::kAddConst, 1.5, 1.0), 2.5);
  EXPECT_NEAR(ApplyEwise(EwiseOp::kGelu, 0.0, 1.0), 0.8412, 1e-3);
  EXPECT_EQ(ApplyEwise(EwiseOp::kNone, 0.0, 7.0), 7.0);
}

}  // namespace
}  // namespace ir
}  // namespace alcop
