// Tests of the thread pool (support/parallel.h): full coverage of index
// space, serial fallback, exception propagation, nested use, and the
// global-pool configuration hooks.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/parallel.h"

namespace alcop {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    support::ThreadPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    std::vector<std::atomic<int>> counts(1000);
    pool.ParallelFor(counts.size(),
                     [&](size_t i) { counts[i].fetch_add(1); });
    for (const std::atomic<int>& count : counts) EXPECT_EQ(count.load(), 1);
  }
}

TEST(ThreadPoolTest, ZeroAndNegativeThreadsClampToSerial) {
  support::ThreadPool zero(0);
  EXPECT_EQ(zero.threads(), 1);
  support::ThreadPool negative(-3);
  EXPECT_EQ(negative.threads(), 1);
  std::vector<int> order;
  // With no workers the loop runs inline in index order on this thread.
  std::thread::id caller = std::this_thread::get_id();
  zero.ParallelFor(10, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, EmptyRangeIsANoop) {
  support::ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  support::ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t i) {
                         if (i % 10 == 3) throw std::runtime_error("boom " + std::to_string(i));
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, LowestIndexExceptionWins) {
  // Multiple failures: the rethrown exception is deterministically the one
  // from the smallest index, regardless of scheduling.
  for (int threads : {1, 4}) {
    support::ThreadPool pool(threads);
    try {
      pool.ParallelFor(64, [&](size_t i) {
        if (i >= 7) throw std::runtime_error("fail@" + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail@7");
    }
  }
}

TEST(ThreadPoolTest, AllIterationsRunEvenWhenOneThrows) {
  support::ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(50,
                                [&](size_t i) {
                                  ran.fetch_add(1);
                                  if (i == 0) throw std::runtime_error("x");
                                }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  support::ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(16 * 16);
  pool.ParallelFor(16, [&](size_t outer) {
    // Nested calls run inline on the worker; no deadlock, full coverage.
    pool.ParallelFor(16, [&](size_t inner) {
      counts[outer * 16 + inner].fetch_add(1);
    });
  });
  for (const std::atomic<int>& count : counts) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ParallelMapPreservesIndexOrder) {
  support::SetGlobalThreads(8);
  std::vector<int> out =
      support::ParallelMap(257, [](size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 257u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
  support::SetGlobalThreads(support::ThreadsFromEnv());
}

TEST(ThreadPoolTest, SetGlobalThreadsReconfiguresThePool) {
  support::SetGlobalThreads(3);
  EXPECT_EQ(support::ConfiguredThreads(), 3);
  support::SetGlobalThreads(1);
  EXPECT_EQ(support::ConfiguredThreads(), 1);
  // Work still runs after swapping pools.
  std::atomic<int> sum{0};
  support::ParallelFor(10, [&](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 45);
  support::SetGlobalThreads(support::ThreadsFromEnv());
}

TEST(ThreadPoolTest, ManyThreadsFewItems) {
  support::ThreadPool pool(16);
  std::set<size_t> seen;
  std::mutex mu;
  pool.ParallelFor(3, [&](size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(i);
  });
  EXPECT_EQ(seen, (std::set<size_t>{0, 1, 2}));
}

TEST(ThreadPoolTest, SmallBatchRunsInlineOnTheCaller) {
  // Below the chunking threshold (fewer than two iterations per thread)
  // the fan-out overhead cannot pay for itself, so the batch must run
  // serially on the calling thread, in index order.
  support::ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<size_t> order;
  pool.ParallelFor(7, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<size_t> expected(7);
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ThreadsFromEnvClampsToHardwareConcurrency) {
  unsigned hw_raw = std::thread::hardware_concurrency();
  int hw = hw_raw == 0 ? 1 : static_cast<int>(hw_raw);
  const char* saved = std::getenv("ALCOP_THREADS");
  std::string restore = saved == nullptr ? "" : saved;
  setenv("ALCOP_THREADS", "1000000", /*overwrite=*/1);
  EXPECT_EQ(support::ThreadsFromEnv(), hw);
  setenv("ALCOP_THREADS", "1", /*overwrite=*/1);
  EXPECT_EQ(support::ThreadsFromEnv(), 1);
  unsetenv("ALCOP_THREADS");
  EXPECT_EQ(support::ThreadsFromEnv(), hw);
  if (saved != nullptr) setenv("ALCOP_THREADS", restore.c_str(), 1);
}

}  // namespace
}  // namespace alcop
