// Tests of the process-wide compile+simulate cache (sim/sim_cache.h):
// key canonicalization, hit/miss accounting, and that a repeated
// exhaustive sweep is 100% hits returning identical cycles.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "schedule/tensor.h"
#include "sim/sim_cache.h"
#include "support/parallel.h"
#include "target/gpu_spec.h"
#include "tuner/space.h"
#include "tuner/strategy.h"

namespace alcop {
namespace {

using schedule::MakeMatmul;

// A small real-simulator task so cache tests stay fast.
tuner::TuningTask SmallSimTask() {
  tuner::SpaceOptions options;
  options.tb_m = {64, 128};
  options.tb_n = {32, 64};
  options.tb_k = {32};
  options.warp_splits = {{2, 1}, {2, 2}};
  return tuner::MakeSimulatorTask(MakeMatmul("mm", 1024, 64, 2048),
                                  target::AmpereSpec(), options);
}

TEST(SimCacheTest, KeyDistinguishesOpConfigAndSpec) {
  schedule::GemmOp op = MakeMatmul("mm", 512, 512, 512);
  schedule::ScheduleConfig config;
  target::GpuSpec spec = target::AmpereSpec();
  std::string base = sim::SimCacheKey(op, config, spec,
                                      schedule::InlineOrder::kAfterPipelining);

  schedule::GemmOp op2 = op;
  op2.k = 1024;
  EXPECT_NE(base, sim::SimCacheKey(op2, config, spec,
                                   schedule::InlineOrder::kAfterPipelining));

  schedule::ScheduleConfig config2 = config;
  config2.smem_stages = 4;
  EXPECT_NE(base, sim::SimCacheKey(op, config2, spec,
                                   schedule::InlineOrder::kAfterPipelining));

  // Benches mutate spec fields in place; the name alone must not collide.
  target::GpuSpec spec2 = spec;
  spec2.dram_bw_bytes_per_cycle *= 2.0;
  EXPECT_NE(base, sim::SimCacheKey(op, config, spec2,
                                   schedule::InlineOrder::kAfterPipelining));

  EXPECT_NE(base, sim::SimCacheKey(op, config, spec,
                                   schedule::InlineOrder::kBeforePipelining));

  // Operator name is presentation only — same shape, same kernel.
  schedule::GemmOp renamed = op;
  renamed.name = "other";
  EXPECT_EQ(base, sim::SimCacheKey(renamed, config, spec,
                                   schedule::InlineOrder::kAfterPipelining));
}

TEST(SimCacheTest, RepeatedExhaustiveSearchIsAllHits) {
  tuner::TuningTask task = SmallSimTask();
  ASSERT_GE(task.space.size(), 8u);
  sim::ResetSimCache();

  tuner::TuningResult first = tuner::ExhaustiveSearch(task);
  sim::SimCacheStats after_first = sim::GetSimCacheStats();
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_EQ(after_first.misses, task.space.size());
  EXPECT_EQ(after_first.entries, task.space.size());

  tuner::TuningResult second = tuner::ExhaustiveSearch(task);
  sim::SimCacheStats after_second = sim::GetSimCacheStats();
  // The rerun is 100% hits: no new misses, one hit per config.
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_EQ(after_second.hits, task.space.size());
  EXPECT_EQ(after_second.entries, task.space.size());

  ASSERT_EQ(first.trials, second.trials);
  ASSERT_EQ(first.measured, second.measured);  // bit-identical cycles
}

TEST(SimCacheTest, CachedResultMatchesDirectSimulation) {
  tuner::TuningTask task = SmallSimTask();
  sim::ResetSimCache();
  for (const schedule::ScheduleConfig& config : task.space) {
    sim::KernelTiming direct =
        sim::CompileAndSimulate(task.op, config, task.spec);
    sim::KernelTiming cached =
        sim::CachedCompileAndSimulate(task.op, config, task.spec);
    sim::KernelTiming cached_again =
        sim::CachedCompileAndSimulate(task.op, config, task.spec);
    EXPECT_EQ(direct.feasible, cached.feasible);
    EXPECT_EQ(direct.cycles, cached.cycles);
    EXPECT_EQ(cached.cycles, cached_again.cycles);
    EXPECT_EQ(cached.reason, cached_again.reason);
  }
}

// Counters live inside the shards and GetSimCacheStats locks every shard,
// so a snapshot taken mid-sweep is linearizable: it can never observe an
// entry whose miss is uncounted, and hits/misses/entries only grow
// between snapshots while no reset runs. Under TSan (the CI tsan job
// matches this suite) this also proves the counter updates are raced
// against concurrent lookups without a data race.
TEST(SimCacheTest, ConcurrentSnapshotsAreConsistent) {
  tuner::TuningTask task = SmallSimTask();
  ASSERT_GE(task.space.size(), 4u);
  sim::ResetSimCache();

  constexpr int kWorkers = 3;
  constexpr int kSweeps = 4;
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::thread observer([&] {
    sim::SimCacheStats prev;
    while (!done.load(std::memory_order_acquire)) {
      sim::SimCacheStats now = sim::GetSimCacheStats();
      bool consistent =
          now.entries <= now.misses &&  // every entry was inserted by a miss
          now.program_entries <= now.program_misses &&
          now.hits >= prev.hits && now.misses >= prev.misses &&
          now.entries >= prev.entries &&
          now.program_misses >= prev.program_misses;
      if (!consistent) violations.fetch_add(1, std::memory_order_relaxed);
      prev = now;
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&task] {
      for (int sweep = 0; sweep < kSweeps; ++sweep) {
        for (const schedule::ScheduleConfig& config : task.space) {
          sim::CachedCompileAndSimulate(task.op, config, task.spec);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  done.store(true, std::memory_order_release);
  observer.join();

  EXPECT_EQ(violations.load(), 0);
  sim::SimCacheStats final_stats = sim::GetSimCacheStats();
  // Every lookup was counted exactly once, racing misses included.
  EXPECT_EQ(final_stats.hits + final_stats.misses,
            static_cast<uint64_t>(kWorkers * kSweeps) * task.space.size());
  EXPECT_EQ(final_stats.entries, task.space.size());
  EXPECT_GE(final_stats.misses, task.space.size());
}

TEST(SimCacheTest, ResetClearsEntriesAndCounters) {
  tuner::TuningTask task = SmallSimTask();
  sim::ResetSimCache();
  tuner::ExhaustiveSearch(task);
  EXPECT_GT(sim::GetSimCacheStats().entries, 0u);
  sim::ResetSimCache();
  sim::SimCacheStats stats = sim::GetSimCacheStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

}  // namespace
}  // namespace alcop
