// Tests of the process-wide compile+simulate cache (sim/sim_cache.h):
// key canonicalization, hit/miss accounting, and that a repeated
// exhaustive sweep is 100% hits returning identical cycles.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "schedule/tensor.h"
#include "sim/sim_cache.h"
#include "support/parallel.h"
#include "target/gpu_spec.h"
#include "tuner/space.h"
#include "tuner/strategy.h"

namespace alcop {
namespace {

using schedule::MakeMatmul;

// A small real-simulator task so cache tests stay fast.
tuner::TuningTask SmallSimTask() {
  tuner::SpaceOptions options;
  options.tb_m = {64, 128};
  options.tb_n = {32, 64};
  options.tb_k = {32};
  options.warp_splits = {{2, 1}, {2, 2}};
  return tuner::MakeSimulatorTask(MakeMatmul("mm", 1024, 64, 2048),
                                  target::AmpereSpec(), options);
}

TEST(SimCacheTest, KeyDistinguishesOpConfigAndSpec) {
  schedule::GemmOp op = MakeMatmul("mm", 512, 512, 512);
  schedule::ScheduleConfig config;
  target::GpuSpec spec = target::AmpereSpec();
  std::string base = sim::SimCacheKey(op, config, spec,
                                      schedule::InlineOrder::kAfterPipelining);

  schedule::GemmOp op2 = op;
  op2.k = 1024;
  EXPECT_NE(base, sim::SimCacheKey(op2, config, spec,
                                   schedule::InlineOrder::kAfterPipelining));

  schedule::ScheduleConfig config2 = config;
  config2.smem_stages = 4;
  EXPECT_NE(base, sim::SimCacheKey(op, config2, spec,
                                   schedule::InlineOrder::kAfterPipelining));

  // Benches mutate spec fields in place; the name alone must not collide.
  target::GpuSpec spec2 = spec;
  spec2.dram_bw_bytes_per_cycle *= 2.0;
  EXPECT_NE(base, sim::SimCacheKey(op, config, spec2,
                                   schedule::InlineOrder::kAfterPipelining));

  EXPECT_NE(base, sim::SimCacheKey(op, config, spec,
                                   schedule::InlineOrder::kBeforePipelining));

  // Operator name is presentation only — same shape, same kernel.
  schedule::GemmOp renamed = op;
  renamed.name = "other";
  EXPECT_EQ(base, sim::SimCacheKey(renamed, config, spec,
                                   schedule::InlineOrder::kAfterPipelining));
}

TEST(SimCacheTest, RepeatedExhaustiveSearchIsAllHits) {
  tuner::TuningTask task = SmallSimTask();
  ASSERT_GE(task.space.size(), 8u);
  sim::ResetSimCache();

  tuner::TuningResult first = tuner::ExhaustiveSearch(task);
  sim::SimCacheStats after_first = sim::GetSimCacheStats();
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_EQ(after_first.misses, task.space.size());
  EXPECT_EQ(after_first.entries, task.space.size());

  tuner::TuningResult second = tuner::ExhaustiveSearch(task);
  sim::SimCacheStats after_second = sim::GetSimCacheStats();
  // The rerun is 100% hits: no new misses, one hit per config.
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_EQ(after_second.hits, task.space.size());
  EXPECT_EQ(after_second.entries, task.space.size());

  ASSERT_EQ(first.trials, second.trials);
  ASSERT_EQ(first.measured, second.measured);  // bit-identical cycles
}

TEST(SimCacheTest, CachedResultMatchesDirectSimulation) {
  tuner::TuningTask task = SmallSimTask();
  sim::ResetSimCache();
  for (const schedule::ScheduleConfig& config : task.space) {
    sim::KernelTiming direct =
        sim::CompileAndSimulate(task.op, config, task.spec);
    sim::KernelTiming cached =
        sim::CachedCompileAndSimulate(task.op, config, task.spec);
    sim::KernelTiming cached_again =
        sim::CachedCompileAndSimulate(task.op, config, task.spec);
    EXPECT_EQ(direct.feasible, cached.feasible);
    EXPECT_EQ(direct.cycles, cached.cycles);
    EXPECT_EQ(cached.cycles, cached_again.cycles);
    EXPECT_EQ(cached.reason, cached_again.reason);
  }
}

// Counters live inside the shards and GetSimCacheStats locks every shard,
// so a snapshot taken mid-sweep is linearizable: it can never observe an
// entry whose miss is uncounted, and hits/misses/entries only grow
// between snapshots while no reset runs. Under TSan (the CI tsan job
// matches this suite) this also proves the counter updates are raced
// against concurrent lookups without a data race.
TEST(SimCacheTest, ConcurrentSnapshotsAreConsistent) {
  tuner::TuningTask task = SmallSimTask();
  ASSERT_GE(task.space.size(), 4u);
  sim::ResetSimCache();

  constexpr int kWorkers = 3;
  constexpr int kSweeps = 4;
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};

  std::thread observer([&] {
    sim::SimCacheStats prev;
    while (!done.load(std::memory_order_acquire)) {
      sim::SimCacheStats now = sim::GetSimCacheStats();
      bool consistent =
          now.entries <= now.misses &&  // every entry was inserted by a miss
          now.program_entries <= now.program_misses &&
          now.hits >= prev.hits && now.misses >= prev.misses &&
          now.entries >= prev.entries &&
          now.program_misses >= prev.program_misses;
      if (!consistent) violations.fetch_add(1, std::memory_order_relaxed);
      prev = now;
    }
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&task] {
      for (int sweep = 0; sweep < kSweeps; ++sweep) {
        for (const schedule::ScheduleConfig& config : task.space) {
          sim::CachedCompileAndSimulate(task.op, config, task.spec);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  done.store(true, std::memory_order_release);
  observer.join();

  EXPECT_EQ(violations.load(), 0);
  sim::SimCacheStats final_stats = sim::GetSimCacheStats();
  // Every lookup was counted exactly once, racing misses included.
  EXPECT_EQ(final_stats.hits + final_stats.misses,
            static_cast<uint64_t>(kWorkers * kSweeps) * task.space.size());
  EXPECT_EQ(final_stats.entries, task.space.size());
  EXPECT_GE(final_stats.misses, task.space.size());
}

TEST(SimCacheTest, ResetClearsEntriesAndCounters) {
  tuner::TuningTask task = SmallSimTask();
  sim::ResetSimCache();
  tuner::ExhaustiveSearch(task);
  EXPECT_GT(sim::GetSimCacheStats().entries, 0u);
  sim::ResetSimCache();
  sim::SimCacheStats stats = sim::GetSimCacheStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

// RAII budget override: tests below bound the cache and must restore the
// unbounded default even on assertion failure.
struct ScopedBudget {
  explicit ScopedBudget(uint64_t bytes)
      : saved(sim::GetSimCacheBudgetBytes()) {
    sim::SetSimCacheBudgetBytes(bytes);
  }
  ~ScopedBudget() { sim::SetSimCacheBudgetBytes(saved); }
  uint64_t saved;
};

TEST(SimCacheLruTest, ProbeCountsHitOnlyWhenPresent) {
  sim::ResetSimCache();
  schedule::GemmOp op = MakeMatmul("mm", 512, 512, 512);
  schedule::ScheduleConfig config;
  target::GpuSpec spec = target::AmpereSpec();

  sim::KernelTiming probed;
  EXPECT_FALSE(sim::ProbeCachedTiming(
      op, config, spec, schedule::InlineOrder::kAfterPipelining, &probed));
  sim::SimCacheStats stats = sim::GetSimCacheStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);  // a probe miss is not a miss

  sim::KernelTiming direct = sim::CachedCompileAndSimulate(op, config, spec);
  EXPECT_TRUE(sim::ProbeCachedTiming(
      op, config, spec, schedule::InlineOrder::kAfterPipelining, &probed));
  EXPECT_EQ(probed.cycles, direct.cycles);
  stats = sim::GetSimCacheStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(SimCacheLruTest, BudgetBoundsResidencyAndCountsEvictions) {
  tuner::TuningTask task = SmallSimTask();
  ASSERT_GE(task.space.size(), 8u);

  // Measure the unbounded footprint of the sweep, then re-run it under
  // half that budget: evictions must fire and residency must converge
  // under the cap.
  sim::ResetSimCache();
  tuner::ExhaustiveSearch(task);
  uint64_t unbounded = sim::GetSimCacheStats().resident_bytes;
  ASSERT_GT(unbounded, 0u);

  sim::ResetSimCache();
  {
    ScopedBudget budget(unbounded / 2);
    tuner::ExhaustiveSearch(task);
    sim::SimCacheStats stats = sim::GetSimCacheStats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_EQ(stats.evictions,
              stats.timing_evictions + stats.program_evictions);
    EXPECT_LE(stats.resident_bytes, unbounded / 2);
    EXPECT_EQ(stats.budget_bytes, unbounded / 2);

    // Evicted or not, results stay correct: a re-sweep recompiles what
    // was dropped and returns the same cycles as the unbounded run.
    tuner::TuningResult rerun = tuner::ExhaustiveSearch(task);
    for (double cycles : rerun.measured) {
      EXPECT_TRUE(cycles > 0 || std::isinf(cycles));
    }
  }
  sim::ResetSimCache();
}

TEST(SimCacheLruTest, EvictionTakesStalestEntriesFirst) {
  // Synthetic timing entries give exact control over recency: insertion
  // order IS tick order. With ~20 entries per shard and a budget that
  // overflows by a few entries, eviction must take each shard's stalest
  // — so every evicted key comes from the old end of the insertion
  // order, and the just-inserted keys all survive.
  sim::ResetSimCache();
  sim::KernelTiming timing;
  timing.feasible = true;
  timing.cycles = 1000.0;
  auto key_for = [](int i) {
    return "synthetic-entry-" + std::to_string(i) + std::string(40, 'k');
  };
  constexpr int kEntries = 320;  // ~20 per shard
  for (int i = 0; i < kEntries; ++i) {
    sim::InsertCachedTiming(key_for(i), timing);
  }
  sim::SimCacheStats before = sim::GetSimCacheStats();
  ASSERT_EQ(before.entries, static_cast<uint64_t>(kEntries));
  ASSERT_EQ(before.evictions, 0u);

  {
    ScopedBudget budget(before.resident_bytes);  // full to the brim
    for (int i = kEntries; i < kEntries + 8; ++i) {
      sim::InsertCachedTiming(key_for(i), timing);  // pushes over budget
    }
    sim::SimCacheStats after = sim::GetSimCacheStats();
    EXPECT_GT(after.evictions, 0u);
    EXPECT_LE(after.resident_bytes, before.resident_bytes);

    std::set<std::string> present;
    for (auto& [key, value] : sim::SnapshotCachedTimings()) {
      present.insert(key);
    }
    // Every freshly inserted entry survives; every evicted entry comes
    // from the stale half of the insertion order.
    for (int i = kEntries; i < kEntries + 8; ++i) {
      EXPECT_TRUE(present.count(key_for(i)))
          << "fresh entry " << i << " was evicted";
    }
    for (int i = kEntries / 2; i < kEntries; ++i) {
      EXPECT_TRUE(present.count(key_for(i)))
          << "recent entry " << i << " evicted before stale ones";
    }
  }
  sim::ResetSimCache();
}

TEST(SimCacheLruTest, ProbeTouchPromotesEntryAndOverflowPassConverges) {
  // Compile-path entries are probe-addressable, so recency bumps via the
  // hit path are observable. A one-byte budget then forces the global
  // overflow pass: everything but the inserting key must go, regardless
  // of which shard it hashed into.
  sim::ResetSimCache();
  target::GpuSpec spec = target::AmpereSpec();
  schedule::ScheduleConfig config;
  config.tile = {128, 128, 32, 64, 64, 16};
  config.smem_stages = 2;

  schedule::GemmOp a = MakeMatmul("mm", 512, 512, 512);
  schedule::GemmOp b = MakeMatmul("mm", 512, 512, 768);
  sim::CachedCompileAndSimulate(a, config, spec);
  sim::CachedCompileAndSimulate(b, config, spec);

  sim::KernelTiming probed;
  ASSERT_TRUE(sim::ProbeCachedTiming(
      a, config, spec, schedule::InlineOrder::kAfterPipelining, &probed));
  uint64_t hits = sim::GetSimCacheStats().hits;
  EXPECT_GE(hits, 1u);  // the probe counted a hit and touched the entry

  {
    ScopedBudget budget(1);
    schedule::GemmOp c = MakeMatmul("mm", 512, 512, 1024);
    sim::CachedCompileAndSimulate(c, config, spec);
    sim::SimCacheStats stats = sim::GetSimCacheStats();
    EXPECT_GT(stats.evictions, 0u);
    // a and b live in arbitrary shards; only the cross-shard pass can
    // reclaim both when the inserting shard is not theirs.
    EXPECT_FALSE(sim::ProbeCachedTiming(
        a, config, spec, schedule::InlineOrder::kAfterPipelining, &probed));
    EXPECT_FALSE(sim::ProbeCachedTiming(
        b, config, spec, schedule::InlineOrder::kAfterPipelining, &probed));
  }
  sim::ResetSimCache();
}

TEST(SimCacheLruTest, InsertCachedNeverClobbersAndCountsNothing) {
  sim::ResetSimCache();
  schedule::GemmOp op = MakeMatmul("mm", 512, 512, 512);
  schedule::ScheduleConfig config;
  target::GpuSpec spec = target::AmpereSpec();
  std::string key = sim::SimCacheKey(op, config, spec,
                                     schedule::InlineOrder::kAfterPipelining);

  sim::KernelTiming live = sim::CachedCompileAndSimulate(op, config, spec);
  uint64_t misses = sim::GetSimCacheStats().misses;

  sim::KernelTiming stale;
  stale.feasible = true;
  stale.cycles = -1.0;  // a poisoned value that must never surface
  sim::InsertCachedTiming(key, stale);

  sim::SimCacheStats stats = sim::GetSimCacheStats();
  EXPECT_EQ(stats.misses, misses);  // insert counted neither hit nor miss
  sim::KernelTiming after = sim::CachedCompileAndSimulate(op, config, spec);
  EXPECT_EQ(after.cycles, live.cycles) << "loaded entry clobbered live one";

  // Into an empty slot the insert lands and is served.
  sim::ResetSimCache();
  sim::InsertCachedTiming(key, live);
  sim::KernelTiming probed;
  EXPECT_TRUE(sim::ProbeCachedTiming(
      op, config, spec, schedule::InlineOrder::kAfterPipelining, &probed));
  EXPECT_EQ(probed.cycles, live.cycles);
}

// Concurrent sweeps under a tight budget: inserts, hits, evictions and
// snapshots all race. TSan (the CI tsan job runs this suite) proves the
// LRU bookkeeping — tick clock, byte accounting, compaction — is
// race-free; the assertions prove the stats stay coherent.
TEST(SimCacheLruTest, ConcurrentSweepsUnderBudgetStayCoherent) {
  tuner::TuningTask task = SmallSimTask();
  sim::ResetSimCache();
  tuner::ExhaustiveSearch(task);
  uint64_t unbounded = sim::GetSimCacheStats().resident_bytes;
  sim::ResetSimCache();

  {
    ScopedBudget budget(unbounded / 2);
    std::atomic<bool> done{false};
    std::thread observer([&] {
      while (!done.load(std::memory_order_acquire)) {
        sim::SimCacheStats now = sim::GetSimCacheStats();
        EXPECT_EQ(now.evictions,
                  now.timing_evictions + now.program_evictions);
      }
    });
    std::vector<std::thread> workers;
    for (int w = 0; w < 3; ++w) {
      workers.emplace_back([&task] {
        for (int sweep = 0; sweep < 3; ++sweep) {
          for (const schedule::ScheduleConfig& config : task.space) {
            sim::KernelTiming timing =
                sim::CachedCompileAndSimulate(task.op, config, task.spec);
            EXPECT_TRUE(timing.feasible || !timing.reason.empty());
          }
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    done.store(true, std::memory_order_release);
    observer.join();

    sim::SimCacheStats stats = sim::GetSimCacheStats();
    EXPECT_LE(stats.resident_bytes, unbounded / 2);
  }
  sim::ResetSimCache();
}

}  // namespace
}  // namespace alcop
