// Tests of the observability layer (src/obs/): span tracing, the metrics
// registry, the Chrome/Perfetto trace exporter (golden-output and
// schema checks), stall attribution (breakdowns must sum to the batch
// makespan for every warp), and the zero-overhead guard — with tracing
// disabled a warm ReplaySimProgram performs no heap allocation and the
// KernelTiming is bit-identical whether tracing is on or off.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "obs/stall.h"
#include "obs/trace.h"
#include "schedule/tensor.h"
#include "sim/desim.h"
#include "sim/launch.h"
#include "sim/sim_cache.h"
#include "sim/timeline.h"
#include "target/gpu_spec.h"
#include "tuner/space.h"
#include "tuner/strategy.h"

// Sanitizer builds replace the allocator; counting allocations there is
// both unreliable and interferes with the interceptors, so the guard
// falls back to the ReplayArena capacity assertion.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define ALCOP_OBS_NO_ALLOC_COUNTING 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define ALCOP_OBS_NO_ALLOC_COUNTING 1
#endif
#endif

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

#if !defined(ALCOP_OBS_NO_ALLOC_COUNTING)
// Counting allocator for the whole test binary: every operator new bumps
// one relaxed counter. Deltas around a code region measure its heap
// traffic exactly (this binary is single-threaded during that region).
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* ptr = std::malloc(size ? size : 1);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}
void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* ptr = std::malloc(size ? size : 1);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
#endif  // !ALCOP_OBS_NO_ALLOC_COUNTING

namespace alcop {
namespace {

using schedule::MakeMatmul;

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// RAII: every test that enables tracing restores the disabled default so
// test order never leaks spans into another test's collection.
struct ScopedTracing {
  ScopedTracing() {
    obs::ClearTrace();
    obs::SetTraceEnabled(true);
  }
  ~ScopedTracing() {
    obs::SetTraceEnabled(false);
    obs::ClearTrace();
  }
};

// One small feasible kernel for exporter / stall / overhead tests.
sim::CompiledKernel SmallKernel(const target::GpuSpec& spec,
                                schedule::GemmOp* op_out = nullptr,
                                schedule::ScheduleConfig* config_out = nullptr) {
  schedule::GemmOp op = MakeMatmul("mm", 1024, 64, 2048);
  tuner::SpaceOptions options;
  options.tb_m = {64};
  options.tb_n = {32, 64};
  options.tb_k = {32};
  options.warp_splits = {{2, 1}, {2, 2}};
  for (const schedule::ScheduleConfig& config :
       tuner::EnumerateSpace(op, options)) {
    sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);
    if (sim::InterpretKernel(compiled, spec).feasible) {
      if (op_out != nullptr) *op_out = op;
      if (config_out != nullptr) *config_out = config;
      return compiled;
    }
  }
  ADD_FAILURE() << "no feasible config in the small test space";
  return sim::CompiledKernel();
}

// ---------------------------------------------------------------- tracing

TEST(ObsTraceTest, DisabledRecordsNothing) {
  obs::SetTraceEnabled(false);
  obs::ClearTrace();
  { ALCOP_TRACE_SCOPE("invisible", "test"); }
  obs::RecordSpan("also-invisible", "test", 0, 1);
  EXPECT_TRUE(obs::CollectTraceSpans().empty());
}

TEST(ObsTraceTest, RecordsNestedScopesWithDepth) {
  ScopedTracing tracing;
  {
    ALCOP_TRACE_SCOPE("outer", "test");
    { ALCOP_TRACE_SCOPE("inner", "test"); }
  }
  std::vector<obs::TraceSpan> spans = obs::CollectTraceSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: outer starts first but ends last.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_GE(spans[0].end_ns, spans[1].end_ns);
  EXPECT_EQ(spans[0].thread_id, spans[1].thread_id);
}

TEST(ObsTraceTest, CollectsSpansFromExitedThreads) {
  ScopedTracing tracing;
  std::thread worker([] { ALCOP_TRACE_SCOPE("worker-span", "test"); });
  worker.join();
  std::vector<obs::TraceSpan> spans = obs::CollectTraceSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "worker-span");
}

TEST(ObsTraceTest, CompilerPhasesAreInstrumented) {
  ScopedTracing tracing;
  target::GpuSpec spec = target::AmpereSpec();
  sim::CompiledKernel compiled = SmallKernel(spec);
  sim::SimProgram program = sim::BuildSimProgram(compiled, spec);
  sim::ReplayArena arena;
  sim::ReplaySimProgram(program, &arena);

  std::vector<std::string> names;
  for (const obs::TraceSpan& span : obs::CollectTraceSpans()) {
    names.push_back(span.name);
  }
  auto has = [&](const char* name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };
  EXPECT_TRUE(has("detect"));
  EXPECT_TRUE(has("transform"));
  EXPECT_TRUE(has("lower"));
  EXPECT_TRUE(has("sim-compile"));
  EXPECT_TRUE(has("replay"));
}

// ---------------------------------------------------------------- metrics

TEST(ObsMetricsTest, CounterGaugeHistogramRoundTrip) {
  obs::Counter& counter =
      obs::Registry::Global().GetCounter("test.obs.counter");
  counter.Reset();
  counter.Increment();
  counter.Add(4);
  EXPECT_EQ(counter.Value(), 5u);

  obs::Gauge& gauge = obs::Registry::Global().GetGauge("test.obs.gauge");
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);

  obs::Histogram& histogram =
      obs::Registry::Global().GetHistogram("test.obs.histogram");
  histogram.Reset();
  histogram.Observe(1.0);
  histogram.Observe(3.0);
  histogram.Observe(100.0);
  EXPECT_EQ(histogram.Count(), 3u);
  EXPECT_EQ(histogram.Sum(), 104.0);
  EXPECT_EQ(histogram.Max(), 100.0);
}

TEST(ObsMetricsTest, SameNameReturnsSameInstrument) {
  obs::Counter& a = obs::Registry::Global().GetCounter("test.obs.same");
  obs::Counter& b = obs::Registry::Global().GetCounter("test.obs.same");
  EXPECT_EQ(&a, &b);
}

TEST(ObsMetricsTest, CallbackGaugeAppearsInDumps) {
  obs::Registry::Global().RegisterCallback("test.obs.callback",
                                           [] { return 42.0; });
  std::string text = obs::Registry::Global().RenderText();
  EXPECT_NE(text.find("test.obs.callback"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  std::string json = obs::Registry::Global().RenderJson();
  EXPECT_NE(json.find("\"test.obs.callback\""), std::string::npos);
  // The sim cache registers its own callbacks on first use; after any
  // cache traffic they must surface here too (absorbed stats).
  sim::CachedCompileAndSimulate(MakeMatmul("mm", 256, 128, 256),
                                schedule::ScheduleConfig(),
                                target::AmpereSpec());
  std::string with_cache = obs::Registry::Global().RenderJson();
  EXPECT_NE(with_cache.find("\"sim.cache.timing.misses\""),
            std::string::npos);
}

TEST(ObsMetricsTest, JsonDumpIsDeterministic) {
  std::string a = obs::Registry::Global().RenderJson();
  std::string b = obs::Registry::Global().RenderJson();
  EXPECT_EQ(a, b);
}

// Regression table for HistogramQuantile edge cases: the estimate must
// never leave the populated bucket range, q=0/q=1 must report the
// min/max bucket edges (max-clamped), and degenerate inputs answer 0.
TEST(ObsMetricsTest, QuantileEdgeCaseTable) {
  // Empty histogram: every q answers 0.
  obs::HistogramData empty;
  EXPECT_EQ(obs::HistogramQuantile(empty, 0.0), 0.0);
  EXPECT_EQ(obs::HistogramQuantile(empty, 0.5), 0.0);
  EXPECT_EQ(obs::HistogramQuantile(empty, 1.0), 0.0);

  // Racing snapshot: count ticked before any bucket did. Answer 0
  // rather than inventing a value from unpopulated buckets.
  obs::HistogramData racing;
  racing.count = 5;
  EXPECT_EQ(obs::HistogramQuantile(racing, 0.5), 0.0);

  // Single populated bucket [4, 8) with observed max 6: q=0 reports the
  // lower edge, q=1 the observed max (not the bucket's upper edge), and
  // everything between stays inside [4, 6].
  obs::Histogram single;
  single.Observe(4.0);
  single.Observe(5.0);
  single.Observe(6.0);
  obs::HistogramData data = single.Data();
  EXPECT_EQ(obs::HistogramQuantile(data, 0.0), 4.0);
  EXPECT_EQ(obs::HistogramQuantile(data, 1.0), 6.0);
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    double estimate = obs::HistogramQuantile(data, q);
    EXPECT_GE(estimate, 4.0) << "q=" << q;
    EXPECT_LE(estimate, 6.0) << "q=" << q;
  }

  // q outside [0,1] clamps; NaN answers 0.
  EXPECT_EQ(obs::HistogramQuantile(data, -3.0),
            obs::HistogramQuantile(data, 0.0));
  EXPECT_EQ(obs::HistogramQuantile(data, 7.0),
            obs::HistogramQuantile(data, 1.0));
  EXPECT_EQ(obs::HistogramQuantile(data, std::nan("")), 0.0);

  // Bucket 0 only ([0, 1)): the topmost upper edge clamps to the
  // observed max, so q=1 cannot exceed it.
  obs::Histogram tiny;
  tiny.Observe(0.25);
  tiny.Observe(0.5);
  obs::HistogramData tiny_data = tiny.Data();
  EXPECT_EQ(obs::HistogramQuantile(tiny_data, 0.0), 0.0);
  EXPECT_EQ(obs::HistogramQuantile(tiny_data, 1.0), 0.5);
  EXPECT_LE(obs::HistogramQuantile(tiny_data, 0.5), 0.5);

  // Two populated buckets with a gap: q=1 clamps to the max even when
  // the last bucket's nominal range extends far beyond it.
  obs::Histogram gap;
  gap.Observe(0.5);
  gap.Observe(100.0);  // bucket [64, 128), max 100
  obs::HistogramData gap_data = gap.Data();
  EXPECT_EQ(obs::HistogramQuantile(gap_data, 0.0), 0.0);
  EXPECT_EQ(obs::HistogramQuantile(gap_data, 1.0), 100.0);
}

// --------------------------------------------------------- trace exporter

TEST(ObsChromeTraceTest, GoldenOutput) {
  obs::ChromeTraceWriter writer;
  writer.AddProcessName(1, "alcop host");
  writer.AddThreadName(1, 0, "main");
  writer.AddCompleteEvent("parse", "compiler", 1, 0, 0.25, 12.5);
  writer.AddCompleteEvent("he said \"hi\"", "cat", 2, 3, 1.0, 2.0);
  const char* expected =
      "{\"displayTimeUnit\": \"ms\",\n"
      "\"traceEvents\": [\n"
      "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"alcop host\"}},\n"
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"main\"}},\n"
      "{\"name\": \"parse\", \"cat\": \"compiler\", \"ph\": \"X\", "
      "\"ts\": 0.250, \"dur\": 12.500, \"pid\": 1, \"tid\": 0},\n"
      "{\"name\": \"he said \\\"hi\\\"\", \"cat\": \"cat\", \"ph\": \"X\", "
      "\"ts\": 1.000, \"dur\": 2.000, \"pid\": 2, \"tid\": 3}\n"
      "]}\n";
  EXPECT_EQ(writer.ToJson(), expected);
}

TEST(ObsChromeTraceTest, SimTimelineEventSetMatchesTimeline) {
  target::GpuSpec spec = target::AmpereSpec();
  sim::CompiledKernel compiled = SmallKernel(spec);
  sim::BatchTimeline batch = sim::CaptureTimeline(compiled, spec);
  ASSERT_FALSE(batch.timeline.spans.empty());

  obs::ChromeTraceWriter writer;
  obs::AppendSimTimeline(&writer, batch.timeline, batch.num_warps);
  int max_tb = 0;
  for (const sim::TimelineSpan& span : batch.timeline.spans) {
    max_tb = std::max(max_tb, span.tb);
  }
  // process_name + one thread_name per (tb, warp) and mem-pipe row, then
  // exactly one complete event per timeline span.
  size_t metadata = 1 + static_cast<size_t>(max_tb + 1) *
                            static_cast<size_t>(batch.num_warps + 1);
  EXPECT_EQ(writer.num_events(), metadata + batch.timeline.spans.size());

  // Deterministic: exporting the same timeline twice is byte-identical.
  obs::ChromeTraceWriter again;
  obs::AppendSimTimeline(&again, batch.timeline, batch.num_warps);
  EXPECT_EQ(writer.ToJson(), again.ToJson());

  // Schema sanity: every complete event carries the required keys, and
  // both kinds of rows (warp and mem pipe) are named.
  std::string json = writer.ToJson();
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  EXPECT_NE(json.find("tb0 warp0"), std::string::npos);
  EXPECT_NE(json.find("tb0 mem pipe"), std::string::npos);
}

TEST(ObsChromeTraceTest, HostAndGpuSpansShareOneFile) {
  ScopedTracing tracing;
  target::GpuSpec spec = target::AmpereSpec();
  sim::CompiledKernel compiled = SmallKernel(spec);
  sim::BatchTimeline batch = sim::CaptureTimeline(compiled, spec);

  obs::ChromeTraceWriter writer;
  obs::AppendHostSpans(&writer, obs::CollectTraceSpans());
  obs::AppendSimTimeline(&writer, batch.timeline, batch.num_warps);
  std::string json = writer.ToJson();
  // pid 1 = host compiler phases, pid 2 = the simulated GPU.
  EXPECT_NE(json.find("\"alcop host\""), std::string::npos);
  EXPECT_NE(json.find("\"simulated GPU (1 us = 1 cycle)\""),
            std::string::npos);
  EXPECT_NE(json.find("\"lower\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 2"), std::string::npos);
}

// ------------------------------------------------------ stall attribution

TEST(ObsStallTest, BreakdownSumsToMakespanPerWarp) {
  target::GpuSpec spec = target::AmpereSpec();
  sim::CompiledKernel compiled = SmallKernel(spec);
  sim::BatchTimeline batch = sim::CaptureTimeline(compiled, spec);
  obs::KernelProfile profile = obs::ProfileBatch(batch);

  EXPECT_GT(profile.makespan, 0.0);
  EXPECT_EQ(profile.warps.size(),
            static_cast<size_t>(profile.threadblocks * profile.num_warps));
  for (const obs::WarpProfile& warp : profile.warps) {
    // idle is the residual, so Total() == makespan holds exactly; the
    // real invariant under test is that the categorized spans of one
    // warp never overlap (idle would go negative).
    EXPECT_NEAR(warp.cycles.Total(), profile.makespan, 1e-6)
        << "tb" << warp.tb << " warp" << warp.warp;
    EXPECT_GE(warp.cycles.idle, -1e-6)
        << "overlapping spans on tb" << warp.tb << " warp" << warp.warp;
  }
  EXPECT_NEAR(profile.total.Total(),
              profile.makespan * static_cast<double>(profile.warps.size()),
              1e-6);

  EXPECT_GE(profile.tensor_pipe_utilization, 0.0);
  EXPECT_LE(profile.tensor_pipe_utilization, 1.0 + 1e-9);
  EXPECT_GE(profile.memory_pipe_utilization, 0.0);
  EXPECT_LE(profile.memory_pipe_utilization, 1.0 + 1e-9);
  EXPECT_GE(profile.fill_fraction, 0.0);
  EXPECT_GE(profile.drain_fraction, 0.0);
  EXPECT_FALSE(profile.verdict.empty());
}

TEST(ObsStallTest, ModelVerdictCrossCheck) {
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op;
  schedule::ScheduleConfig config;
  sim::CompiledKernel compiled = SmallKernel(spec, &op, &config);
  obs::KernelProfile profile =
      obs::ProfileBatch(sim::CaptureTimeline(compiled, spec));
  obs::AttachModelVerdict(&profile, op, config, spec);
  EXPECT_TRUE(profile.model_limiter == "compute" ||
              profile.model_limiter == "smem" ||
              profile.model_limiter == "dram");
  EXPECT_GT(profile.model_cycles, 0.0);

  std::string table = obs::RenderProfile(profile);
  EXPECT_NE(table.find("verdict: "), std::string::npos);
  EXPECT_NE(table.find("bottleneck model"), std::string::npos);
  std::string json = obs::ProfileToJson(profile);
  EXPECT_NE(json.find("\"makespan_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"warps\""), std::string::npos);
}

TEST(ObsStallTest, SyntheticTimelineAttributesExactly) {
  sim::BatchTimeline batch;
  batch.threadblocks = 1;
  batch.num_warps = 2;
  batch.timeline.makespan = 100.0;
  auto add = [&](int warp, sim::SpanKind kind, double start, double end) {
    sim::TimelineSpan span;
    span.tb = 0;
    span.warp = warp;
    span.kind = kind;
    span.start = start;
    span.end = end;
    batch.timeline.spans.push_back(span);
  };
  add(0, sim::SpanKind::kCompute, 10.0, 60.0);
  add(0, sim::SpanKind::kSyncStall, 60.0, 90.0);
  add(1, sim::SpanKind::kBarrier, 0.0, 40.0);
  add(-1, sim::SpanKind::kTransfer, 0.0, 30.0);  // mem pipe, not warp time

  obs::KernelProfile profile = obs::ProfileBatch(batch);
  ASSERT_EQ(profile.warps.size(), 2u);
  EXPECT_EQ(profile.warps[0].cycles.compute, 50.0);
  EXPECT_EQ(profile.warps[0].cycles.sync_stall, 30.0);
  EXPECT_EQ(profile.warps[0].cycles.idle, 20.0);
  EXPECT_EQ(profile.warps[1].cycles.barrier, 40.0);
  EXPECT_EQ(profile.warps[1].cycles.idle, 60.0);
  EXPECT_EQ(profile.tensor_pipe_utilization, 0.5);
  EXPECT_EQ(profile.memory_pipe_utilization, 0.3);
  EXPECT_EQ(profile.fill_fraction, 0.1);
  EXPECT_EQ(profile.drain_fraction, 0.4);
  // stall (30 + 40) > compute (50) and the memory pipe is less busy than
  // the tensor pipe, so the stalls are latency, not bandwidth:
  EXPECT_EQ(profile.verdict, "sync-stall-bound");
}

// ------------------------------------------------------ overhead guard

TEST(ObsOverheadTest, TracingDoesNotChangeSimulatedTiming) {
  target::GpuSpec spec = target::AmpereSpec();
  sim::CompiledKernel compiled = SmallKernel(spec);
  sim::SimProgram program = sim::BuildSimProgram(compiled, spec);
  sim::ReplayArena arena;

  obs::SetTraceEnabled(false);
  sim::KernelTiming off = sim::ReplaySimProgram(program, &arena);
  {
    ScopedTracing tracing;
    sim::KernelTiming on = sim::ReplaySimProgram(program, &arena);
    EXPECT_TRUE(BitEqual(off.cycles, on.cycles));
    EXPECT_TRUE(BitEqual(off.microseconds, on.microseconds));
    EXPECT_TRUE(BitEqual(off.tflops, on.tflops));
    EXPECT_EQ(off.batches, on.batches);
    EXPECT_EQ(off.threadblocks_per_sm, on.threadblocks_per_sm);
  }
}

TEST(ObsOverheadTest, WarmReplayIsZeroAllocationWithTracingDisabled) {
  target::GpuSpec spec = target::AmpereSpec();
  sim::CompiledKernel compiled = SmallKernel(spec);
  sim::SimProgram program = sim::BuildSimProgram(compiled, spec);
  sim::ReplayArena arena;

  obs::SetTraceEnabled(false);
  sim::ReplaySimProgram(program, &arena);  // warm-up sizes the arena
  size_t capacity = arena.CapacityBytes();

  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  sim::KernelTiming timing = sim::ReplaySimProgram(program, &arena);
  uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_TRUE(timing.feasible);
  EXPECT_EQ(arena.CapacityBytes(), capacity) << "warm replay grew the arena";
#if !defined(ALCOP_OBS_NO_ALLOC_COUNTING)
  EXPECT_EQ(after - before, 0u)
      << "warm replay allocated with tracing disabled";
#else
  (void)before;
  (void)after;
#endif
}

TEST(ObsOverheadTest, WarmReplayStaysZeroAllocationWithPmuEnabled) {
  // The PMU rows live in the pooled arena: one warm-up with a counter
  // sink sizes them, after which collecting replays allocate nothing —
  // and the counters are byte-deterministic run over run.
  target::GpuSpec spec = target::AmpereSpec();
  sim::CompiledKernel compiled = SmallKernel(spec);
  sim::SimProgram program = sim::BuildSimProgram(compiled, spec);
  sim::ReplayArena arena;

  obs::SetTraceEnabled(false);
  sim::KernelPmu warmup_pmu;
  sim::ReplaySimProgram(program, &arena, &warmup_pmu);
  size_t capacity = arena.CapacityBytes();

  sim::KernelPmu pmu;
  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  sim::KernelTiming timing = sim::ReplaySimProgram(program, &arena, &pmu);
  uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_TRUE(timing.feasible);
  EXPECT_TRUE(pmu.collected);
  EXPECT_EQ(arena.CapacityBytes(), capacity)
      << "collecting warm replay grew the arena";
#if !defined(ALCOP_OBS_NO_ALLOC_COUNTING)
  EXPECT_EQ(after - before, 0u) << "collecting warm replay allocated";
#else
  (void)before;
  (void)after;
#endif
  EXPECT_EQ(std::memcmp(&warmup_pmu.total, &pmu.total,
                        sizeof(sim::PmuCounters)),
            0);
  EXPECT_EQ(std::memcmp(&warmup_pmu.batch, &pmu.batch,
                        sizeof(sim::PmuCounters)),
            0);
}

TEST(ObsOverheadTest, WarmReplayStaysZeroAllocationWithEvictionEnabled) {
  // LRU eviction drops the cache's ownership of a program, but a caller
  // holding the shared_ptr replays on — warm, allocation-free, and
  // bit-identical to the pre-eviction replay. This is the contract that
  // lets alcopd evict aggressively while a batch is in flight.
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op = MakeMatmul("mm", 512, 512, 512);
  schedule::ScheduleConfig config;
  config.tile = {128, 128, 32, 64, 64, 16};
  config.smem_stages = 2;

  sim::ResetSimCache();
  uint64_t saved_budget = sim::GetSimCacheBudgetBytes();
  std::shared_ptr<const sim::SimProgram> program =
      sim::CachedSimProgram(op, config, spec);
  ASSERT_NE(program, nullptr);

  obs::SetTraceEnabled(false);
  sim::ReplayArena arena;
  sim::KernelTiming cold = sim::ReplaySimProgram(*program, &arena);
  size_t capacity = arena.CapacityBytes();

  // A one-byte budget evicts everything evictable on the next insert —
  // including the entry backing `program`.
  sim::SetSimCacheBudgetBytes(1);
  schedule::GemmOp other = MakeMatmul("mm", 512, 512, 1024);
  sim::CachedCompileAndSimulate(other, config, spec);
  EXPECT_GT(sim::GetSimCacheStats().evictions, 0u);

  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  sim::KernelTiming warm = sim::ReplaySimProgram(*program, &arena);
  uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(arena.CapacityBytes(), capacity)
      << "warm replay grew the arena after eviction";
#if !defined(ALCOP_OBS_NO_ALLOC_COUNTING)
  EXPECT_EQ(after - before, 0u) << "warm replay allocated after eviction";
#else
  (void)before;
  (void)after;
#endif
  EXPECT_TRUE(BitEqual(cold.cycles, warm.cycles));
  EXPECT_TRUE(BitEqual(cold.microseconds, warm.microseconds));
  EXPECT_TRUE(BitEqual(cold.tflops, warm.tflops));

  sim::SetSimCacheBudgetBytes(saved_budget);
  sim::ResetSimCache();
}

TEST(ObsOverheadTest, RequestPathInstrumentationIsZeroAllocation) {
  // alcopd's per-request bookkeeping — a gauge bump at dispatch, a span
  // and histogram observations at completion — runs on the lane threads
  // between a warm cache probe and the response write. It must allocate
  // nothing even with tracing enabled, or the hot-path p99 gate in
  // bench/serving_load.cc is at the allocator's mercy.
  obs::Registry& registry = obs::Registry::Global();
  obs::Histogram& latency = registry.GetHistogram(
      "obstest.request.latency.us|lane=fast", "test-only lane histogram");
  obs::Gauge& inflight = registry.GetGauge("obstest.inflight");
  ScopedTracing tracing;

  // Warm-up: the first span on a thread sizes its ring, the first
  // observations settle any lazy instrument state.
  int64_t t0 = obs::NowNanos();
  obs::RecordSpan("obstest.request", "serving", t0 - 100, t0);
  inflight.Add(1.0);
  latency.Observe(1.0);
  inflight.Add(-1.0);

  uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 256; ++i) {
    inflight.Add(1.0);
    int64_t now = obs::NowNanos();
    obs::RecordSpan("obstest.queue_wait", "serving", now - 50, now - 10);
    obs::RecordSpan("obstest.request", "serving", now - 50, now);
    latency.Observe(static_cast<double>(i));
    inflight.Add(-1.0);
  }
  uint64_t after = g_allocations.load(std::memory_order_relaxed);
#if !defined(ALCOP_OBS_NO_ALLOC_COUNTING)
  EXPECT_EQ(after - before, 0u)
      << "request-path instrumentation allocated with tracing enabled";
#else
  (void)before;
  (void)after;
#endif
  EXPECT_EQ(latency.Data().count, 257u);
  EXPECT_EQ(inflight.Value(), 0.0);
}

// ------------------------------------------------------- callback gauges

TEST(ObsGaugeTest, TraceRingDropsNothingOnAProfileSweep) {
  ScopedTracing tracing;
  target::GpuSpec spec = target::AmpereSpec();
  sim::CompiledKernel compiled = SmallKernel(spec);
  sim::SimProgram program = sim::BuildSimProgram(compiled, spec);
  sim::ReplayArena arena;
  for (int i = 0; i < 32; ++i) sim::ReplaySimProgram(program, &arena);
  EXPECT_EQ(obs::DroppedSpans(), 0u)
      << "profile-scale tracing must fit the span rings";
  // Enabling tracing registered the overflow gauge; it must dump as 0.
  std::string json = obs::Registry::Global().RenderJson();
  EXPECT_NE(json.find("\"obs.trace.dropped\": 0"), std::string::npos);
}

TEST(ObsGaugeTest, ArenaBytesGaugeTracksTheThreadLocalArena) {
  target::GpuSpec spec = target::AmpereSpec();
  sim::CompiledKernel compiled = SmallKernel(spec);
  // SimulateKernel goes through the registered thread-local arena.
  sim::KernelTiming timing = sim::SimulateKernel(compiled, spec);
  ASSERT_TRUE(timing.feasible);
  std::string json = obs::Registry::Global().RenderJson();
  size_t pos = json.find("\"sim.arena.bytes\": ");
  ASSERT_NE(pos, std::string::npos);
  double bytes = std::atof(json.c_str() + pos + std::strlen("\"sim.arena.bytes\": "));
  EXPECT_GT(bytes, 0.0) << "resident arena bytes must be published";
}

}  // namespace
}  // namespace alcop
