// Tests of the persistent on-disk schedule cache (serving/persist.h):
// bit-identical round trips through save/reset/load, whole-file rejection
// on version/spec/fitted-constants mismatch, tolerance of truncated and
// corrupted files, and concurrent readers/writers against one path.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "schedule/tensor.h"
#include "serving/persist.h"
#include "sim/compile.h"
#include "sim/sim_cache.h"
#include "target/gpu_spec.h"
#include "tuner/records.h"
#include "tuner/strategy.h"
#include "tuner/transfer.h"

namespace alcop {
namespace {

using schedule::MakeMatmul;

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Fresh process-wide state and a unique file path per test.
class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::ResetSimCache();
    sim::ResetSkeletonPool();
    tuner::TuningStore::Global().Clear();
    path_ = ::testing::TempDir() + "/alcop_persist_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".alcp";
    std::remove(path_.c_str());
  }

  void TearDown() override {
    std::remove(path_.c_str());
    sim::ResetSimCache();
    sim::ResetSkeletonPool();
    tuner::TuningStore::Global().Clear();
  }

  // Populates both cache layers with real compiled entries: several
  // schedules of one operator (numerically-different configs share a
  // skeleton, so the save must write fewer skeleton records than
  // program records) plus a couple of shape variants.
  void Populate(const target::GpuSpec& spec) {
    schedule::GemmOp op = MakeMatmul("mm", 512, 512, 512);
    tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
    // Walk the space until the pool reports sharing so the save always
    // has at least one skeleton referenced by multiple programs.
    for (size_t c = 0; c < task.space.size(); ++c) {
      sim::CachedCompileAndSimulate(op, task.space[c], spec);
      if (sim::GetSkeletonPoolStats().shared > 0 && c >= 3) break;
    }
    schedule::ScheduleConfig config;  // defaults are feasible on Ampere
    for (int64_t k : {1024, 1536}) {
      sim::CachedCompileAndSimulate(MakeMatmul("mm", 512, 512, k), config,
                                    spec);
    }
  }

  std::string ReadFile() {
    std::ifstream in(path_, std::ios::binary);
    EXPECT_TRUE(in.good());
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return data;
  }

  void WriteFile(const std::string& data) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  std::string path_;
};

TEST_F(PersistTest, TimingRoundTripIsBitIdentical) {
  target::GpuSpec spec = target::AmpereSpec();
  Populate(spec);
  std::vector<std::pair<std::string, sim::KernelTiming>> before =
      sim::SnapshotCachedTimings();
  ASSERT_GE(before.size(), 4u);

  serving::PersistStats saved = serving::SaveCache(path_, spec);
  ASSERT_TRUE(saved.ok) << saved.error;
  EXPECT_EQ(saved.timings, before.size());
  EXPECT_GT(saved.bytes, 0u);

  sim::ResetSimCache();
  ASSERT_TRUE(sim::SnapshotCachedTimings().empty());

  serving::PersistStats loaded = serving::LoadCache(path_, spec);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.timings, before.size());
  EXPECT_EQ(loaded.skipped, 0u);

  std::map<std::string, sim::KernelTiming> after;
  for (auto& [key, timing] : sim::SnapshotCachedTimings()) {
    after.emplace(key, timing);
  }
  ASSERT_EQ(after.size(), before.size());
  for (const auto& [key, timing] : before) {
    auto it = after.find(key);
    ASSERT_NE(it, after.end()) << key;
    EXPECT_EQ(timing.feasible, it->second.feasible);
    EXPECT_EQ(timing.reason, it->second.reason);
    EXPECT_TRUE(BitEqual(timing.cycles, it->second.cycles));
    EXPECT_TRUE(BitEqual(timing.microseconds, it->second.microseconds));
    EXPECT_TRUE(BitEqual(timing.tflops, it->second.tflops));
    EXPECT_TRUE(BitEqual(timing.batch_cycles, it->second.batch_cycles));
    EXPECT_EQ(timing.threadblocks_per_sm, it->second.threadblocks_per_sm);
    EXPECT_EQ(timing.batches, it->second.batches);
  }
}

TEST_F(PersistTest, LoadedProgramsReplayBitIdentically) {
  target::GpuSpec spec = target::AmpereSpec();
  Populate(spec);
  std::vector<std::pair<std::string, sim::KernelTiming>> before =
      sim::SnapshotCachedTimings();

  serving::PersistStats saved = serving::SaveCache(path_, spec);
  ASSERT_TRUE(saved.ok) << saved.error;
  ASSERT_GT(saved.programs, 0u);
  ASSERT_GT(saved.skeletons, 0u);
  // Structure sharing survives serialization: fewer skeleton records
  // than program records (same-op schedules share skeletons).
  EXPECT_LT(saved.skeletons, saved.programs);

  sim::ResetSimCache();
  sim::ResetSkeletonPool();
  serving::PersistStats loaded = serving::LoadCache(path_, spec);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.programs, saved.programs);

  sim::ReplayArena arena;
  std::map<std::string, sim::KernelTiming> before_map(before.begin(),
                                                      before.end());
  for (auto& [key, program] : sim::SnapshotCachedPrograms()) {
    ASSERT_NE(program, nullptr);
    sim::KernelTiming replayed = sim::ReplaySimProgram(*program, &arena);
    auto it = before_map.find(key);
    ASSERT_NE(it, before_map.end()) << key;
    EXPECT_TRUE(BitEqual(replayed.cycles, it->second.cycles)) << key;
    EXPECT_TRUE(BitEqual(replayed.tflops, it->second.tflops)) << key;
  }
  // Loaded skeletons were re-interned, not duplicated.
  EXPECT_EQ(sim::GetSkeletonPoolStats().skeletons, loaded.skeletons);
}

TEST_F(PersistTest, TuningStoreRoundTrips) {
  target::GpuSpec spec = target::AmpereSpec();
  tuner::SpaceOptions options;
  options.tb_m = {64, 128};
  options.tb_n = {64};
  options.tb_k = {32};
  tuner::TuningTask task =
      tuner::MakeSimulatorTask(MakeMatmul("mm", 512, 768, 1024), spec, options);
  ASSERT_FALSE(task.space.empty());
  tuner::TuningResult result = tuner::XgbTuner(task, 6, {});
  tuner::StoreTuning(task, result, tuner::TuningStore::Global());
  ASSERT_EQ(tuner::TuningStore::Global().Size(), 1u);
  std::vector<tuner::StoredTuning> before =
      tuner::TuningStore::Global().Snapshot();

  ASSERT_TRUE(serving::SaveCache(path_, spec).ok);
  tuner::TuningStore::Global().Clear();
  sim::ResetSimCache();
  serving::PersistStats loaded = serving::LoadCache(path_, spec);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.tunings, 1u);

  std::vector<tuner::StoredTuning> after =
      tuner::TuningStore::Global().Snapshot();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].op_key, before[0].op_key);
  ASSERT_EQ(after[0].trials.size(), before[0].trials.size());
  for (size_t i = 0; i < after[0].trials.size(); ++i) {
    EXPECT_EQ(after[0].trials[i].config.ToString(),
              before[0].trials[i].config.ToString());
    EXPECT_TRUE(BitEqual(after[0].trials[i].cycles, before[0].trials[i].cycles));
  }
  ASSERT_EQ(after[0].signature.size(), before[0].signature.size());
  for (size_t i = 0; i < after[0].signature.size(); ++i) {
    EXPECT_TRUE(BitEqual(after[0].signature[i], before[0].signature[i]));
  }
}

TEST_F(PersistTest, MissingFileFailsCleanly) {
  serving::PersistStats loaded =
      serving::LoadCache(path_, target::AmpereSpec());
  EXPECT_FALSE(loaded.ok);
  EXPECT_FALSE(loaded.error.empty());
  EXPECT_EQ(loaded.timings, 0u);
}

TEST_F(PersistTest, VersionMismatchRejectsWholeFile) {
  target::GpuSpec spec = target::AmpereSpec();
  Populate(spec);
  ASSERT_TRUE(serving::SaveCache(path_, spec).ok);

  // Header layout: u32 magic | u32 version | u64 spec fp | u64 fit fp.
  std::string data = ReadFile();
  ASSERT_GE(data.size(), 24u);
  uint32_t bumped = serving::kPersistVersion + 1;
  std::memcpy(data.data() + 4, &bumped, sizeof(bumped));
  WriteFile(data);

  sim::ResetSimCache();
  serving::PersistStats loaded = serving::LoadCache(path_, spec);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("version"), std::string::npos) << loaded.error;
  EXPECT_TRUE(sim::SnapshotCachedTimings().empty()) << "partial load";
}

TEST_F(PersistTest, BadMagicRejectsWholeFile) {
  target::GpuSpec spec = target::AmpereSpec();
  Populate(spec);
  ASSERT_TRUE(serving::SaveCache(path_, spec).ok);
  std::string data = ReadFile();
  data[0] ^= 0x5A;
  WriteFile(data);
  sim::ResetSimCache();
  EXPECT_FALSE(serving::LoadCache(path_, spec).ok);
}

TEST_F(PersistTest, SpecNumericsMismatchRejectsWholeFile) {
  target::GpuSpec spec = target::AmpereSpec();
  Populate(spec);
  ASSERT_TRUE(serving::SaveCache(path_, spec).ok);

  target::GpuSpec other = spec;
  other.num_sms += 4;  // different device geometry, same model fit
  ASSERT_NE(serving::SpecFingerprint(spec), serving::SpecFingerprint(other));
  sim::ResetSimCache();
  serving::PersistStats loaded = serving::LoadCache(path_, other);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("Spec"), std::string::npos) << loaded.error;
}

TEST_F(PersistTest, FittedConstantsMismatchRejectsWholeFile) {
  target::GpuSpec spec = target::AmpereSpec();
  Populate(spec);
  ASSERT_TRUE(serving::SaveCache(path_, spec).ok);

  // A refit changes model_fit but not the cache-key numerics: the keys
  // would still match, so only the fitted-constants fingerprint stands
  // between a stale file and silent reuse.
  target::GpuSpec refit = spec;
  refit.model_fit.t_compute.scale *= 1.25;
  refit.model_fit.t_compute.fitted = true;
  ASSERT_EQ(serving::SpecFingerprint(spec), serving::SpecFingerprint(refit));
  ASSERT_NE(serving::FittedConstantsFingerprint(spec),
            serving::FittedConstantsFingerprint(refit));

  sim::ResetSimCache();
  serving::PersistStats loaded = serving::LoadCache(path_, refit);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("fitted"), std::string::npos) << loaded.error;
}

TEST_F(PersistTest, TruncatedTailIsTolerated) {
  target::GpuSpec spec = target::AmpereSpec();
  Populate(spec);
  ASSERT_TRUE(serving::SaveCache(path_, spec).ok);
  std::string data = ReadFile();

  // Chop the file mid-frame: everything before the tear loads, the torn
  // frame is skipped, and load still reports ok.
  WriteFile(data.substr(0, data.size() - data.size() / 3));
  sim::ResetSimCache();
  sim::ResetSkeletonPool();
  serving::PersistStats loaded = serving::LoadCache(path_, spec);
  EXPECT_TRUE(loaded.ok) << loaded.error;
  EXPECT_LT(loaded.timings + loaded.programs, 8u);

  // Header-only (and shorter) files fail cleanly rather than crash.
  for (size_t keep : {0u, 7u, 23u}) {
    WriteFile(data.substr(0, keep));
    sim::ResetSimCache();
    EXPECT_FALSE(serving::LoadCache(path_, spec).ok) << keep;
  }
}

TEST_F(PersistTest, CorruptFrameIsSkippedNotFatal) {
  target::GpuSpec spec = target::AmpereSpec();
  Populate(spec);
  serving::PersistStats saved = serving::SaveCache(path_, spec);
  ASSERT_TRUE(saved.ok);
  std::string data = ReadFile();

  // Flip one payload byte past the header and first frame prefix: that
  // frame's checksum no longer matches, the loader skips it and resyncs.
  data[data.size() / 2] ^= 0xFF;
  WriteFile(data);
  sim::ResetSimCache();
  sim::ResetSkeletonPool();
  serving::PersistStats loaded = serving::LoadCache(path_, spec);
  EXPECT_TRUE(loaded.ok) << loaded.error;
  EXPECT_GE(loaded.skipped, 1u);
  uint64_t total_saved = saved.timings + saved.programs + saved.skeletons +
                         saved.tunings;
  uint64_t total_loaded = loaded.timings + loaded.programs +
                          loaded.skeletons + loaded.tunings;
  EXPECT_LT(total_loaded, total_saved);
  EXPECT_GT(total_loaded, 0u) << "corruption of one frame dropped everything";
}

TEST_F(PersistTest, LoadNeverClobbersLiveEntries) {
  target::GpuSpec spec = target::AmpereSpec();
  Populate(spec);
  ASSERT_TRUE(serving::SaveCache(path_, spec).ok);

  // Live entries stay; loading on top only fills gaps.
  std::vector<std::pair<std::string, sim::KernelTiming>> live =
      sim::SnapshotCachedTimings();
  serving::PersistStats loaded = serving::LoadCache(path_, spec);
  ASSERT_TRUE(loaded.ok);
  std::vector<std::pair<std::string, sim::KernelTiming>> after =
      sim::SnapshotCachedTimings();
  EXPECT_EQ(after.size(), live.size());
}

TEST_F(PersistTest, ConcurrentReadersAndWritersAreSafe) {
  // Savers snapshot under the shard locks and rename() complete files
  // into place; loaders see either the old or the new file, never a torn
  // one. TSan runs this to check the snapshot/insert paths race-free.
  target::GpuSpec spec = target::AmpereSpec();
  Populate(spec);
  ASSERT_TRUE(serving::SaveCache(path_, spec).ok);

  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      schedule::ScheduleConfig config;
      config.smem_stages = 2 + t;
      for (int i = 0; i < 3; ++i) {
        sim::CachedCompileAndSimulate(
            MakeMatmul("mm", 512, 512, 512 + 256 * i), config, spec);
        serving::SaveCache(path_, spec);
      }
    });
    threads.emplace_back([&] {
      for (int i = 0; i < 6; ++i) {
        serving::PersistStats loaded = serving::LoadCache(path_, spec);
        EXPECT_TRUE(loaded.ok) << loaded.error;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  serving::PersistStats final_load = serving::LoadCache(path_, spec);
  EXPECT_TRUE(final_load.ok) << final_load.error;
}

TEST_F(PersistTest, DefaultCachePathFollowsEnv) {
  const char* saved = std::getenv("ALCOP_CACHE_DIR");
  std::string restore = saved == nullptr ? "" : saved;

  ::setenv("ALCOP_CACHE_DIR", "/tmp/alcop_cache_dir_test", 1);
  EXPECT_EQ(serving::DefaultCachePath(),
            "/tmp/alcop_cache_dir_test/sim_cache.alcp");
  ::unsetenv("ALCOP_CACHE_DIR");
  EXPECT_EQ(serving::DefaultCachePath(), "");

  if (saved != nullptr) ::setenv("ALCOP_CACHE_DIR", restore.c_str(), 1);
}

}  // namespace
}  // namespace alcop
