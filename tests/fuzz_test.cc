// Randomized property tests over the whole compilation flow: random
// operators and random valid schedules (including split-K, inline orders
// and fusion modes) must always produce numerically correct pipelined
// kernels under the async-semantics checker, and the timing stack must
// stay finite and deterministic on everything the space enumerates.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/structural_equal.h"
#include "perfmodel/analytical.h"
#include "pipeline/detect.h"
#include "pipeline/transform.h"
#include "schedule/lower.h"
#include "sim/executor.h"
#include "sim/launch.h"
#include "support/check.h"
#include "support/rng.h"
#include "target/gpu_spec.h"
#include "tuner/space.h"
#include "verify/sync_mutator.h"
#include "verify/verifier.h"

namespace alcop {
namespace {

using schedule::GemmOp;
using schedule::InlineOrder;
using schedule::ScheduleConfig;

// Draws a small random problem and a random valid schedule for it.
struct RandomCase {
  GemmOp op;
  ScheduleConfig config;
  InlineOrder inline_order;
};

RandomCase DrawCase(uint64_t seed) {
  Rng rng(seed);
  RandomCase out;

  int64_t m = 32 * rng.UniformInt(1, 4);
  int64_t n = 32 * rng.UniformInt(1, 4);
  int64_t k = 16 * rng.UniformInt(2, 12);
  int64_t batch = rng.UniformInt(1, 3);
  out.op = schedule::MakeBatchMatmul("fuzz", batch, m, n, k);

  switch (rng.UniformInt(0, 3)) {
    case 0:
      out.op.a_producer_op = ir::EwiseOp::kScale;
      out.op.a_producer_param = 0.5;
      break;
    case 1:
      out.op.epilogue_op = ir::EwiseOp::kRelu;
      break;
    default:
      break;
  }
  out.inline_order = out.op.a_producer_op == ir::EwiseOp::kNone
                         ? InlineOrder::kAfterPipelining
                         : static_cast<InlineOrder>(rng.UniformInt(0, 2));

  // Sample a valid config from a small space (plus random split-K and
  // fusion toggles).
  tuner::SpaceOptions options;
  options.tb_m = {32, 64};
  options.tb_n = {32, 64};
  options.tb_k = {16, 32};
  options.warp_splits = {{1, 1}, {2, 1}, {2, 2}};
  options.warp_k = {8, 16};
  options.smem_stages = {1, 2, 3, 4};
  options.reg_stages = {1, 2};
  options.split_k = {1, 2};
  std::vector<ScheduleConfig> space = tuner::EnumerateSpace(out.op, options);
  ALCOP_CHECK(!space.empty());
  out.config = space[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(space.size()) - 1))];
  out.config.inner_fusion = rng.UniformInt(0, 1) == 1;
  return out;
}

class PipelineFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineFuzz, RandomScheduleIsCorrect) {
  RandomCase c = DrawCase(GetParam());
  SCOPED_TRACE("op " + std::to_string(c.op.batch) + "x" +
               std::to_string(c.op.m) + "x" + std::to_string(c.op.n) + "x" +
               std::to_string(c.op.k) + " config " + c.config.ToString());

  schedule::Schedule sched(c.op, c.config, c.inline_order);
  pipeline::AutoPipeline(sched, target::AmpereSpec());
  schedule::LoweredKernel kernel = schedule::LowerSchedule(sched);
  pipeline::TransformResult transformed =
      pipeline::ApplyPipelineTransform(kernel.stmt, c.config.inner_fusion);

  Rng data_rng(GetParam() * 7919 + 3);
  std::vector<float> a(static_cast<size_t>(c.op.batch * c.op.m * c.op.k));
  std::vector<float> b(static_cast<size_t>(c.op.batch * c.op.n * c.op.k));
  for (float& v : a) v = static_cast<float>(data_rng.Uniform(-1, 1));
  for (float& v : b) v = static_cast<float>(data_rng.Uniform(-1, 1));

  sim::Executor exec;
  exec.Bind(kernel.a, a);
  exec.Bind(kernel.b, b);
  ASSERT_NO_THROW(exec.Run(transformed.stmt));

  std::vector<float> expected = sim::ReferenceGemm(
      a, b, c.op.batch, c.op.m, c.op.n, c.op.k, c.op.a_producer_op,
      c.op.a_producer_param, c.op.epilogue_op, c.op.epilogue_param);
  const std::vector<float>& got = exec.Data(kernel.c);
  ASSERT_EQ(got.size(), expected.size());
  // Tolerance scales with the reduction length.
  float tol = 1e-5f * static_cast<float>(c.op.k);
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(got[i], expected[i], tol) << "element " << i;
  }
}

TEST_P(PipelineFuzz, TimingIsFiniteAndDeterministic) {
  RandomCase c = DrawCase(GetParam());
  target::GpuSpec spec = target::AmpereSpec();
  sim::KernelTiming first = sim::CompileAndSimulate(c.op, c.config, spec);
  sim::KernelTiming second = sim::CompileAndSimulate(c.op, c.config, spec);
  if (!first.feasible) {
    EXPECT_FALSE(second.feasible);
    return;
  }
  EXPECT_TRUE(std::isfinite(first.cycles));
  EXPECT_GT(first.cycles, 0.0);
  EXPECT_EQ(first.cycles, second.cycles);
  // Interpreter-vs-replay differential on the random schedule: the
  // bytecode path (which CompileAndSimulate uses) must agree bit for bit
  // with the AST-interpreter oracle on every mutated draw — including
  // the PMU counter payload (memcmp over the raw counter structs).
  sim::CompiledKernel compiled = sim::CompileKernel(c.op, c.config, spec);
  sim::KernelPmu interp_pmu;
  sim::KernelTiming interpreted =
      sim::InterpretKernel(compiled, spec, &interp_pmu);
  EXPECT_TRUE(interpreted.feasible);
  EXPECT_EQ(interpreted.cycles, first.cycles) << c.config.ToString();
  EXPECT_EQ(interpreted.microseconds, first.microseconds);
  EXPECT_EQ(interpreted.batches, first.batches);
  sim::SimProgram program = sim::CompileSimProgram(c.op, c.config, spec);
  sim::ReplayArena arena;
  sim::KernelPmu replay_pmu;
  sim::ReplaySimProgram(program, &arena, &replay_pmu);
  EXPECT_TRUE(interp_pmu.collected);
  EXPECT_EQ(std::memcmp(&interp_pmu.total, &replay_pmu.total,
                        sizeof(sim::PmuCounters)),
            0)
      << c.config.ToString();
  EXPECT_EQ(std::memcmp(&interp_pmu.batch, &replay_pmu.batch,
                        sizeof(sim::PmuCounters)),
            0)
      << c.config.ToString();
  EXPECT_EQ(interp_pmu.achieved_occupancy, replay_pmu.achieved_occupancy);
  // The analytical model must also be finite on any feasible schedule.
  double predicted = perfmodel::PredictCycles(c.op, c.config, spec);
  EXPECT_TRUE(std::isfinite(predicted)) << c.config.ToString();
}

TEST_P(PipelineFuzz, TransformedIrRoundTripsThroughText) {
  RandomCase c = DrawCase(GetParam());
  schedule::Schedule sched(c.op, c.config, c.inline_order);
  pipeline::AutoPipeline(sched, target::AmpereSpec());
  schedule::LoweredKernel kernel = schedule::LowerSchedule(sched);
  pipeline::TransformResult transformed =
      pipeline::ApplyPipelineTransform(kernel.stmt, c.config.inner_fusion);

  std::vector<ir::Buffer> externals = {kernel.a, kernel.b, kernel.c};
  if (kernel.a_ew != nullptr) externals.push_back(kernel.a_ew);
  if (kernel.workspace != nullptr) externals.push_back(kernel.workspace);

  std::string printed = ir::ToString(transformed.stmt);
  ir::Stmt reparsed = ir::ParseStmt(printed, externals);
  EXPECT_EQ(ir::ToString(reparsed), printed) << c.config.ToString();
  EXPECT_TRUE(ir::StructuralEqual(reparsed, transformed.stmt))
      << c.config.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<uint64_t>(0, 40));

// ---- Static/dynamic sync-mutation differential ----
//
// For every sync statement of every compiled kernel below, apply each of
// the four mutations (drop / duplicate / shift earlier / shift later) plus
// a wait_ahead perturbation, then check that the static verifier and the
// executor's dynamic checker reach the same verdict: the mutant either
// passes both or fails both. This is the property that justifies trusting
// the static verdict without execution. Everything is seeded through
// support/rng, so a failure reproduces exactly.

struct MutationCase {
  int64_t k;
  int smem_stages;
  int reg_stages;
  bool inner_fusion;
};

TEST(SyncMutationDifferential, StaticVerdictMatchesExecutor) {
  const target::GpuSpec spec = target::AmpereSpec();
  // K is sized so the serial ko loop always has at least smem_stages
  // iterations; both fusion modes run for each stage pairing.
  const MutationCase cases[] = {
      {96, 3, 2, true},  {96, 3, 2, false},  {64, 2, 2, true},
      {64, 2, 2, false}, {160, 4, 2, true},  {160, 4, 2, false},
  };
  const verify::SyncMutation kMutations[] = {
      verify::SyncMutation::kDrop,
      verify::SyncMutation::kDuplicate,
      verify::SyncMutation::kShiftEarlier,
      verify::SyncMutation::kShiftLater,
  };

  Rng data_rng(0xA1C09);
  int total = 0;
  for (const MutationCase& c : cases) {
    GemmOp op = schedule::MakeMatmul("mutfuzz", 32, 32, c.k);
    ScheduleConfig config;
    config.tile = {.tb_m = 32, .tb_n = 32, .tb_k = 32,
                   .warp_m = 16, .warp_n = 16, .warp_k = 16};
    config.smem_stages = c.smem_stages;
    config.reg_stages = c.reg_stages;
    config.inner_fusion = c.inner_fusion;

    schedule::Schedule sched(op, config, InlineOrder::kAfterPipelining);
    pipeline::AutoPipeline(sched, spec);
    schedule::LoweredKernel kernel = schedule::LowerSchedule(sched);
    pipeline::TransformResult transformed =
        pipeline::ApplyPipelineTransform(kernel.stmt, c.inner_fusion);
    ASSERT_TRUE(verify::VerifyProgram(transformed.stmt).Clean());

    std::vector<float> a(static_cast<size_t>(op.m * op.k));
    std::vector<float> b(static_cast<size_t>(op.n * op.k));
    for (float& v : a) v = static_cast<float>(data_rng.Uniform(-1, 1));
    for (float& v : b) v = static_cast<float>(data_rng.Uniform(-1, 1));

    auto check_mutant = [&](const ir::Stmt& mutant,
                            const std::string& label) {
      ++total;
      bool static_fails = verify::VerifyProgram(mutant).HasSyncError();
      bool dynamic_fails = false;
      try {
        sim::Executor exec;
        exec.Bind(kernel.a, a);
        exec.Bind(kernel.b, b);
        exec.Run(mutant);
      } catch (const CheckError&) {
        dynamic_fails = true;
      }
      EXPECT_EQ(static_fails, dynamic_fails)
          << label << " (k=" << c.k << " smem=" << c.smem_stages
          << " reg=" << c.reg_stages
          << (c.inner_fusion ? " fused" : " recursive") << ")\n"
          << verify::VerifyProgram(mutant).Render();
    };

    std::vector<verify::SyncSite> sites =
        verify::ListSyncSites(transformed.stmt);
    ASSERT_FALSE(sites.empty());
    for (size_t s = 0; s < sites.size(); ++s) {
      for (verify::SyncMutation mutation : kMutations) {
        ir::Stmt mutant =
            verify::MutateSyncSite(transformed.stmt, s, mutation);
        if (mutant == nullptr) continue;  // mutation inapplicable here
        check_mutant(mutant, std::string(verify::SyncMutationName(mutation)) +
                                 " " + sites[s].label);
      }
      if (sites[s].stmt->sync_kind == ir::SyncKind::kConsumerWait) {
        ir::Stmt slack = verify::SetWaitAhead(
            transformed.stmt, s, sites[s].stmt->wait_ahead + 1);
        if (slack != nullptr) {
          check_mutant(slack, "wait_ahead+1 " + sites[s].label);
        }
      }
    }
  }
  EXPECT_GE(total, 200) << "differential must cover at least 200 mutants";
}

}  // namespace
}  // namespace alcop
