// Tests of the tuning-record log: serialization round trip, corrupt-line
// tolerance, best-record lookup, and integration with the tuner.
#include <gtest/gtest.h>

#include "sim/launch.h"
#include "target/gpu_spec.h"
#include "tuner/records.h"
#include "tuner/strategy.h"

namespace alcop {
namespace {

using schedule::MakeBatchMatmul;
using schedule::MakeMatmul;
using tuner::FromJsonLine;
using tuner::OpKey;
using tuner::RecordLog;
using tuner::ToJsonLine;
using tuner::TuningRecord;

schedule::ScheduleConfig SampleConfig() {
  schedule::ScheduleConfig config;
  config.tile = {128, 64, 32, 64, 32, 16};
  config.smem_stages = 3;
  config.reg_stages = 2;
  config.split_k = 2;
  config.inner_fusion = false;
  return config;
}

TEST(RecordsTest, OpKeyIsCanonical) {
  EXPECT_EQ(OpKey(MakeMatmul("anything", 512, 768, 3072)),
            "matmul/1/512x768x3072");
  EXPECT_EQ(OpKey(MakeBatchMatmul("x", 12, 512, 64, 512)),
            "batch_matmul/12/512x64x512");
  // The key ignores the name: same problem, same key.
  EXPECT_EQ(OpKey(MakeMatmul("a", 64, 64, 64)),
            OpKey(MakeMatmul("b", 64, 64, 64)));
}

TEST(RecordsTest, JsonRoundTrip) {
  TuningRecord record{OpKey(MakeMatmul("m", 512, 768, 3072)), SampleConfig(),
                      27432.0};
  std::string line = ToJsonLine(record);
  std::optional<TuningRecord> parsed = FromJsonLine(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->op_key, record.op_key);
  EXPECT_EQ(parsed->config.ToString(), record.config.ToString());
  EXPECT_DOUBLE_EQ(parsed->cycles, record.cycles);
}

TEST(RecordsTest, MalformedLinesRejected) {
  EXPECT_FALSE(FromJsonLine("").has_value());
  EXPECT_FALSE(FromJsonLine("not json").has_value());
  EXPECT_FALSE(FromJsonLine("{\"op\":\"x\",\"tb\":[1,2]}").has_value());
  // Truncated tail.
  TuningRecord record{"k", SampleConfig(), 1.0};
  std::string line = ToJsonLine(record);
  EXPECT_FALSE(FromJsonLine(line.substr(0, line.size() - 3)).has_value());
}

TEST(RecordsTest, LogParseSkipsCorruptLines) {
  TuningRecord a{"op_a", SampleConfig(), 100.0};
  TuningRecord b{"op_a", SampleConfig(), 90.0};
  std::string text = ToJsonLine(a) + "\ngarbage line\n" + ToJsonLine(b) + "\n";
  int skipped = 0;
  RecordLog log = RecordLog::Parse(text, &skipped);
  EXPECT_EQ(skipped, 1);
  ASSERT_EQ(log.records().size(), 2u);
}

TEST(RecordsTest, SerializeParseRoundTrip) {
  RecordLog log;
  log.Append({"op_a", SampleConfig(), 100.0});
  schedule::ScheduleConfig other = SampleConfig();
  other.smem_stages = 4;
  other.split_k = 1;
  log.Append({"op_b", other, 55.5});
  RecordLog reparsed = RecordLog::Parse(log.Serialize());
  EXPECT_EQ(reparsed.Serialize(), log.Serialize());
}

TEST(RecordsTest, BestPicksLowestCycles) {
  RecordLog log;
  log.Append({"op_a", SampleConfig(), 100.0});
  log.Append({"op_a", SampleConfig(), 80.0});
  log.Append({"op_b", SampleConfig(), 10.0});
  std::optional<TuningRecord> best = log.Best("op_a");
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->cycles, 80.0);
  EXPECT_FALSE(log.Best("missing").has_value());
}

TEST(RecordsTest, TunedResultReplaysFromLog) {
  // Tune once, persist, reload, and re-apply the best schedule: the
  // replayed measurement must match the recorded one exactly (the
  // simulator is deterministic).
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op = MakeMatmul("mm", 512, 256, 1024);
  tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
  tuner::TuningResult result = tuner::AnalyticalRanking(task, 10);

  RecordLog log;
  for (size_t i = 0; i < result.trials.size(); ++i) {
    log.Append({OpKey(op), task.space[result.trials[i]], result.measured[i]});
  }
  RecordLog reloaded = RecordLog::Parse(log.Serialize());
  std::optional<TuningRecord> best = reloaded.Best(OpKey(op));
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(task.measure(best->config), best->cycles);
}

}  // namespace
}  // namespace alcop
