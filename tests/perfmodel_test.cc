// Tests of the Table-I analytical performance model and the bottleneck
// baseline: the pipeline latency model's two regimes, the
// pipelining/tiling/occupancy trade-off, and ranking quality against the
// simulator.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "perfmodel/analytical.h"
#include "perfmodel/bottleneck.h"
#include "sim/launch.h"
#include "target/gpu_spec.h"
#include "tuner/space.h"

namespace alcop {
namespace {

using perfmodel::AnalyticalBreakdown;
using perfmodel::AnalyticalModel;
using perfmodel::PipelineLatencyModel;
using schedule::GemmOp;
using schedule::MakeMatmul;
using schedule::ScheduleConfig;

ScheduleConfig Config(int smem_stages, int reg_stages) {
  ScheduleConfig config;
  config.tile = {.tb_m = 128, .tb_n = 128, .tb_k = 32,
                 .warp_m = 64, .warp_n = 64, .warp_k = 16};
  config.smem_stages = smem_stages;
  config.reg_stages = reg_stages;
  return config;
}

// ---- Pipeline latency model (Table I, middle row) ----

TEST(PipelineLatencyModelTest, ComputeBoundRegime) {
  // T_load <= (N_pipe*N_mplx - 1) * T_use: the loop runs at compute speed.
  EXPECT_DOUBLE_EQ(PipelineLatencyModel(100.0, 60.0, 10, 3, 2), 600.0);
}

TEST(PipelineLatencyModelTest, LoadBoundRegime) {
  // T_load too large: (T_load + T_use) * N / N_pipe.
  EXPECT_DOUBLE_EQ(PipelineLatencyModel(1000.0, 60.0, 10, 2, 2),
                   (1000.0 + 60.0) * 10 / 2);
}

TEST(PipelineLatencyModelTest, BoundaryIsComputeBound) {
  // Exactly at the boundary the compute-bound branch applies.
  double t_load = (3 * 2 - 1) * 60.0;
  EXPECT_DOUBLE_EQ(PipelineLatencyModel(t_load, 60.0, 4, 3, 2), 240.0);
}

TEST(PipelineLatencyModelTest, NoPipelineNoMultiplexSerializes) {
  // N_pipe = N_mplx = 1: every load is exposed.
  EXPECT_DOUBLE_EQ(PipelineLatencyModel(100.0, 60.0, 5, 1, 1),
                   (100.0 + 60.0) * 5);
}

TEST(PipelineLatencyModelTest, MorePipelineStagesNeverHurt) {
  for (int pipe = 1; pipe <= 6; ++pipe) {
    double shallow = PipelineLatencyModel(500.0, 80.0, 16, pipe, 2);
    double deep = PipelineLatencyModel(500.0, 80.0, 16, pipe + 1, 2);
    EXPECT_LE(deep, shallow) << "stages " << pipe << " -> " << pipe + 1;
  }
}

// ---- Full model ----

TEST(AnalyticalModelTest, FeasibleBreakdownIsConsistent) {
  GemmOp op = MakeMatmul("mm", 2048, 2048, 2048);
  AnalyticalBreakdown b =
      AnalyticalModel(op, Config(3, 2), target::AmpereSpec());
  ASSERT_TRUE(b.feasible) << b.reason;
  EXPECT_GT(b.cycles, 0.0);
  EXPECT_GT(b.t_main_loop, 0.0);
  EXPECT_GT(b.threadblocks_per_sm, 0);
  EXPECT_GT(b.batches, 0);
  // The kernel total covers at least batches x main loop.
  EXPECT_GE(b.cycles, b.t_main_loop * static_cast<double>(b.batches));
}

TEST(AnalyticalModelTest, PipeliningPredictedToHelpWhenLoadBound) {
  GemmOp op = MakeMatmul("mm", 1024, 64, 2048);
  ScheduleConfig config;
  config.tile = {.tb_m = 128, .tb_n = 64, .tb_k = 32,
                 .warp_m = 32, .warp_n = 32, .warp_k = 16};
  target::GpuSpec spec = target::AmpereSpec();
  double base = perfmodel::PredictCycles(op, config, spec);
  config.smem_stages = 4;
  config.reg_stages = 2;
  double pipelined = perfmodel::PredictCycles(op, config, spec);
  EXPECT_LT(pipelined, base);
}

TEST(AnalyticalModelTest, StageInflationEventuallyCostsOccupancy) {
  // The pipelining/tiling trade-off: on big tiles, deep stages reduce
  // N_threadblk_per_SM; the model must reflect the occupancy loss.
  GemmOp op = MakeMatmul("mm", 2048, 2048, 2048);
  target::GpuSpec spec = target::AmpereSpec();
  AnalyticalBreakdown two = AnalyticalModel(op, Config(2, 1), spec);
  AnalyticalBreakdown eight = AnalyticalModel(op, Config(8, 1), spec);
  ASSERT_TRUE(two.feasible);
  ASSERT_TRUE(eight.feasible);
  EXPECT_LT(eight.threadblocks_per_sm, two.threadblocks_per_sm);
}

TEST(AnalyticalModelTest, InvalidScheduleIsInfinity) {
  GemmOp op = MakeMatmul("mm", 100, 100, 100);
  EXPECT_TRUE(std::isinf(
      perfmodel::PredictCycles(op, Config(2, 1), target::AmpereSpec())));
}

TEST(AnalyticalModelTest, UnfittableScheduleIsInfinity) {
  GemmOp op = MakeMatmul("mm", 2048, 2048, 2048);
  ScheduleConfig config = Config(8, 2);
  config.tile.tb_m = 256;
  config.tile.tb_n = 256;
  EXPECT_TRUE(std::isinf(
      perfmodel::PredictCycles(op, config, target::AmpereSpec())));
}

// ---- Bottleneck model ----

TEST(BottleneckModelTest, BlindToPipelineStages) {
  GemmOp op = MakeMatmul("mm", 2048, 2048, 2048);
  target::GpuSpec spec = target::AmpereSpec();
  EXPECT_DOUBLE_EQ(perfmodel::BottleneckPredictCycles(op, Config(1, 1), spec),
                   perfmodel::BottleneckPredictCycles(op, Config(4, 2), spec));
}

TEST(BottleneckModelTest, SensitiveToTiling) {
  // Tile size changes data reuse, which the bottleneck model does see.
  GemmOp op = MakeMatmul("mm", 2048, 2048, 2048);
  target::GpuSpec spec = target::AmpereSpec();
  ScheduleConfig small = Config(1, 1);
  small.tile = {.tb_m = 32, .tb_n = 32, .tb_k = 16,
                .warp_m = 32, .warp_n = 32, .warp_k = 16};
  EXPECT_GT(perfmodel::BottleneckPredictCycles(op, small, spec),
            perfmodel::BottleneckPredictCycles(op, Config(1, 1), spec));
}

// ---- Model-vs-simulator ranking quality ----

TEST(AnalyticalModelTest, RanksBetterThanBottleneckOnPipelineSweep) {
  // Across a stage sweep at fixed tiles, the analytical model must order
  // configurations consistently with the simulator more often than the
  // bottleneck model does (which cannot order them at all).
  GemmOp op = MakeMatmul("mm", 1024, 256, 2048);
  target::GpuSpec spec = target::AmpereSpec();
  std::vector<ScheduleConfig> configs;
  for (int smem : {1, 2, 3, 4}) {
    for (int reg : {1, 2}) configs.push_back(Config(smem, reg));
  }
  int analytical_agree = 0, bottleneck_agree = 0, pairs = 0;
  std::vector<double> simulated, analytical, bottleneck;
  for (const ScheduleConfig& config : configs) {
    simulated.push_back(sim::CompileAndSimulate(op, config, spec).cycles);
    analytical.push_back(perfmodel::PredictCycles(op, config, spec));
    bottleneck.push_back(
        perfmodel::BottleneckPredictCycles(op, config, spec));
  }
  for (size_t i = 0; i < configs.size(); ++i) {
    for (size_t j = i + 1; j < configs.size(); ++j) {
      if (std::abs(simulated[i] - simulated[j]) < 1e-9) continue;
      ++pairs;
      bool sim_less = simulated[i] < simulated[j];
      analytical_agree += (analytical[i] < analytical[j]) == sim_less;
      bottleneck_agree += (bottleneck[i] < bottleneck[j]) == sim_less;
    }
  }
  // The bottleneck model ties on every stage-only difference (ties score
  // half by chance in this pairwise count); the analytical model must do
  // at least as well overall and substantially better than chance.
  EXPECT_GE(analytical_agree, bottleneck_agree);
  EXPECT_GT(static_cast<double>(analytical_agree), 0.7 * pairs);
}

}  // namespace
}  // namespace alcop
