// Validation of the Conv2D -> implicit-GEMM substitution: a direct NHWC
// convolution must equal GEMM over the im2col expansion, including through
// the full pipelined compilation flow.
#include <gtest/gtest.h>

#include "pipeline/detect.h"
#include "pipeline/transform.h"
#include "schedule/lower.h"
#include "sim/executor.h"
#include "support/rng.h"
#include "target/gpu_spec.h"
#include "workloads/conv_ref.h"

namespace alcop {
namespace {

using workloads::ConvShape;

std::vector<float> RandomData(int64_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(count));
  for (float& v : data) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return data;
}

class ConvEquivalence : public ::testing::TestWithParam<ConvShape> {};

TEST_P(ConvEquivalence, Im2colGemmMatchesDirectConv) {
  ConvShape shape = GetParam();
  std::vector<float> input = RandomData(shape.n * shape.h * shape.w * shape.c_in, 11);
  std::vector<float> weights =
      RandomData(shape.c_out * shape.kernel * shape.kernel * shape.c_in, 12);

  std::vector<float> direct = workloads::DirectConv2d(input, weights, shape);
  std::vector<float> a = workloads::Im2col(input, shape);
  std::vector<float> b = workloads::FlattenWeights(weights, shape);
  std::vector<float> gemm = sim::ReferenceGemm(
      a, b, 1, shape.OutputPositions(), shape.c_out, shape.PatchSize());

  // GEMM row p / column k corresponds to output position p, channel k.
  ASSERT_EQ(direct.size(), gemm.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    ASSERT_NEAR(direct[i], gemm[i], 1e-4f) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvEquivalence,
    ::testing::Values(ConvShape{.n = 1, .h = 6, .w = 6, .c_in = 3, .c_out = 5, .kernel = 3},
                      ConvShape{.n = 2, .h = 8, .w = 8, .c_in = 4, .c_out = 8, .kernel = 3},
                      ConvShape{.n = 2, .h = 5, .w = 7, .c_in = 6, .c_out = 4, .kernel = 3},
                      ConvShape{.n = 2, .h = 8, .w = 8, .c_in = 8, .c_out = 8, .kernel = 1}),
    [](const ::testing::TestParamInfo<ConvShape>& info) {
      const ConvShape& s = info.param;
      return "n" + std::to_string(s.n) + "h" + std::to_string(s.h) + "w" +
             std::to_string(s.w) + "ci" + std::to_string(s.c_in) + "co" +
             std::to_string(s.c_out) + "k" + std::to_string(s.kernel);
    });

TEST(ConvPipelineTest, PipelinedKernelComputesConvViaIm2col) {
  // End-to-end: run the pipelined GEMM kernel on the (padded) im2col
  // matrix and compare the live region against direct convolution.
  ConvShape shape{.n = 2, .h = 8, .w = 8, .c_in = 8, .c_out = 32, .kernel = 3};
  std::vector<float> input = RandomData(shape.n * shape.h * shape.w * shape.c_in, 21);
  std::vector<float> weights =
      RandomData(shape.c_out * shape.kernel * shape.kernel * shape.c_in, 22);

  // The workload op pads M to 256 and K to 16 multiples.
  schedule::GemmOp op = schedule::MakeConv("conv", shape.n, shape.h, shape.w,
                                           shape.c_in, shape.c_out,
                                           shape.kernel);
  ASSERT_EQ(op.m, 256);  // 2*8*8 = 128 -> padded
  ASSERT_EQ(op.k, 80);   // 8*9 = 72 -> padded

  std::vector<float> a_padded(static_cast<size_t>(op.m * op.k), 0.0f);
  std::vector<float> im2col = workloads::Im2col(input, shape);
  for (int64_t row = 0; row < shape.OutputPositions(); ++row) {
    for (int64_t col = 0; col < shape.PatchSize(); ++col) {
      a_padded[static_cast<size_t>(row * op.k + col)] =
          im2col[static_cast<size_t>(row * shape.PatchSize() + col)];
    }
  }
  std::vector<float> b_padded(static_cast<size_t>(op.n * op.k), 0.0f);
  std::vector<float> flat = workloads::FlattenWeights(weights, shape);
  for (int64_t row = 0; row < shape.c_out; ++row) {
    for (int64_t col = 0; col < shape.PatchSize(); ++col) {
      b_padded[static_cast<size_t>(row * op.k + col)] =
          flat[static_cast<size_t>(row * shape.PatchSize() + col)];
    }
  }

  schedule::ScheduleConfig config;
  config.tile = {.tb_m = 64, .tb_n = 32, .tb_k = 16,
                 .warp_m = 32, .warp_n = 16, .warp_k = 8};
  config.smem_stages = 3;
  config.reg_stages = 2;
  schedule::Schedule sched(op, config);
  pipeline::AutoPipeline(sched, target::AmpereSpec());
  schedule::LoweredKernel kernel = schedule::LowerSchedule(sched);
  pipeline::TransformResult transformed =
      pipeline::ApplyPipelineTransform(kernel.stmt);

  sim::Executor exec;
  exec.Bind(kernel.a, a_padded);
  exec.Bind(kernel.b, b_padded);
  exec.Run(transformed.stmt);

  std::vector<float> direct = workloads::DirectConv2d(input, weights, shape);
  const std::vector<float>& c = exec.Data(kernel.c);
  for (int64_t p = 0; p < shape.OutputPositions(); ++p) {
    for (int64_t k = 0; k < shape.c_out; ++k) {
      ASSERT_NEAR(c[static_cast<size_t>(p * op.n + k)],
                  direct[static_cast<size_t>(p * shape.c_out + k)], 1e-3f)
          << "position " << p << " channel " << k;
    }
  }
}

}  // namespace
}  // namespace alcop
