// Tests of the per-level memory-traffic report.
#include <gtest/gtest.h>

#include "sim/traffic_report.h"
#include "support/check.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace {

sim::CompiledKernel Compile(int64_t m, int64_t n, int64_t k,
                            schedule::ScheduleConfig config) {
  return sim::CompileKernel(schedule::MakeMatmul("mm", m, n, k), config,
                            target::AmpereSpec());
}

schedule::ScheduleConfig BigConfig() {
  schedule::ScheduleConfig config;
  config.tile = {.tb_m = 128, .tb_n = 128, .tb_k = 32,
                 .warp_m = 64, .warp_n = 64, .warp_k = 16};
  config.smem_stages = 3;
  config.reg_stages = 2;
  return config;
}

TEST(TrafficReportTest, ExactCountsForKnownKernel) {
  // 2048^3 with 128x128x32 tiles: 256 threadblocks x 64 iterations.
  sim::CompiledKernel compiled = Compile(2048, 2048, 2048, BigConfig());
  sim::TrafficReport report =
      sim::AnalyzeKernelTraffic(compiled, target::AmpereSpec());

  double tbs = 16.0 * 16.0;
  double iters = 64.0;
  EXPECT_DOUBLE_EQ(report.llc_read_bytes, tbs * iters * (128 + 128) * 32 * 2.0);
  EXPECT_DOUBLE_EQ(report.smem_write_bytes, report.llc_read_bytes);
  // Four warps per tile, each loading (64+64)x16 fp16 per inner step.
  EXPECT_DOUBLE_EQ(report.lds_read_bytes,
                   tbs * 4 * iters * 2 * (64 + 64) * 16 * 2.0);
  EXPECT_DOUBLE_EQ(report.dram_write_bytes, 2048.0 * 2048.0 * 2.0);
  EXPECT_DOUBLE_EQ(report.flops, 2.0 * 2048 * 2048 * 2048);
  // LLC reuse must filter DRAM traffic well below LLC traffic.
  EXPECT_LT(report.dram_read_bytes, 0.5 * report.llc_read_bytes);
  EXPECT_GT(report.dram_read_bytes, 0.0);
}

TEST(TrafficReportTest, IntensitiesOrdering) {
  sim::CompiledKernel compiled = Compile(2048, 2048, 2048, BigConfig());
  sim::TrafficReport report =
      sim::AnalyzeKernelTraffic(compiled, target::AmpereSpec());
  // Reuse grows up the hierarchy: DRAM intensity > LLC intensity, and the
  // register level re-reads shared memory more than once.
  EXPECT_GT(report.DramIntensity(), report.LlcIntensity());
  EXPECT_GT(report.LlcIntensity(), report.LdsIntensity() / 2.0);
  EXPECT_GT(report.LdsIntensity(), 0.0);
}

TEST(TrafficReportTest, BiggerTilesMoveFewerLlcBytes) {
  schedule::ScheduleConfig small = BigConfig();
  small.tile = {.tb_m = 64, .tb_n = 64, .tb_k = 32,
                .warp_m = 32, .warp_n = 32, .warp_k = 16};
  sim::TrafficReport big = sim::AnalyzeKernelTraffic(
      Compile(2048, 2048, 2048, BigConfig()), target::AmpereSpec());
  sim::TrafficReport tiny = sim::AnalyzeKernelTraffic(
      Compile(2048, 2048, 2048, small), target::AmpereSpec());
  EXPECT_LT(big.llc_read_bytes, tiny.llc_read_bytes);
}

TEST(TrafficReportTest, SplitKAddsWorkspaceTraffic) {
  schedule::ScheduleConfig config;
  config.tile = {.tb_m = 64, .tb_n = 64, .tb_k = 32,
                 .warp_m = 32, .warp_n = 32, .warp_k = 16};
  schedule::ScheduleConfig split = config;
  split.split_k = 4;
  sim::TrafficReport plain = sim::AnalyzeKernelTraffic(
      Compile(1024, 64, 4096, config), target::AmpereSpec());
  sim::TrafficReport with_split = sim::AnalyzeKernelTraffic(
      Compile(1024, 64, 4096, split), target::AmpereSpec());
  EXPECT_GT(with_split.dram_write_bytes, plain.dram_write_bytes);
}

TEST(TrafficReportTest, ToStringMentionsLevels) {
  sim::CompiledKernel compiled = Compile(512, 512, 512, BigConfig());
  std::string text =
      sim::AnalyzeKernelTraffic(compiled, target::AmpereSpec()).ToString();
  EXPECT_NE(text.find("DRAM-read"), std::string::npos) << text;
  EXPECT_NE(text.find("LDS-read"), std::string::npos);
  EXPECT_NE(text.find("intensity"), std::string::npos);
}

}  // namespace
}  // namespace alcop
