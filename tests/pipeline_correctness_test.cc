// End-to-end functional correctness of the pipelining flow:
// schedule -> lower -> detect -> transform -> execute, verified against a
// reference GEMM under the asynchronous-visibility checker. This is the
// strongest property test in the suite: any error in buffer expansion,
// index shifting, modulo rolling, prologue injection or synchronization
// injection either corrupts the numerics or trips the checker.
#include <gtest/gtest.h>

#include "ir/printer.h"
#include "pipeline/detect.h"
#include "pipeline/transform.h"
#include "schedule/lower.h"
#include "schedule/schedule.h"
#include "sim/executor.h"
#include "support/rng.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace {

using schedule::GemmOp;
using schedule::InlineOrder;
using schedule::LoweredKernel;
using schedule::LowerSchedule;
using schedule::MakeBatchMatmul;
using schedule::MakeMatmul;
using schedule::Schedule;
using schedule::ScheduleConfig;

std::vector<float> RandomData(int64_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> data(static_cast<size_t>(count));
  for (float& v : data) {
    v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  return data;
}

// Runs the full flow and compares against the reference GEMM.
void CheckKernel(const GemmOp& op, const ScheduleConfig& config,
                 InlineOrder inline_order = InlineOrder::kAfterPipelining) {
  Schedule sched(op, config, inline_order);
  pipeline::AutoPipeline(sched, target::AmpereSpec());
  LoweredKernel kernel = LowerSchedule(sched);
  pipeline::TransformResult transformed =
      pipeline::ApplyPipelineTransform(kernel.stmt, config.inner_fusion);

  std::vector<float> a = RandomData(op.batch * op.m * op.k, 1);
  std::vector<float> b = RandomData(op.batch * op.n * op.k, 2);

  sim::Executor exec;
  exec.Bind(kernel.a, a);
  exec.Bind(kernel.b, b);
  ASSERT_NO_THROW(exec.Run(transformed.stmt))
      << "async-semantics violation in:\n"
      << ir::ToString(transformed.stmt);

  std::vector<float> expected = sim::ReferenceGemm(
      a, b, op.batch, op.m, op.n, op.k, op.a_producer_op, op.a_producer_param,
      op.epilogue_op, op.epilogue_param);
  const std::vector<float>& got = exec.Data(kernel.c);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(got[i], expected[i], 1e-3f)
        << "mismatch at element " << i << " for config " << config.ToString();
  }
}

ScheduleConfig SmallConfig(int smem_stages, int reg_stages,
                           bool inner_fusion = true) {
  ScheduleConfig config;
  config.tile = {.tb_m = 32, .tb_n = 32, .tb_k = 16,
                 .warp_m = 16, .warp_n = 16, .warp_k = 8};
  config.smem_stages = smem_stages;
  config.reg_stages = reg_stages;
  config.inner_fusion = inner_fusion;
  return config;
}

TEST(PipelineCorrectness, BaselineNoPipelining) {
  CheckKernel(MakeMatmul("mm", 64, 64, 64), SmallConfig(1, 1));
}

TEST(PipelineCorrectness, SharedOnlyTwoStage) {
  CheckKernel(MakeMatmul("mm", 64, 64, 64), SmallConfig(2, 1));
}

TEST(PipelineCorrectness, SharedOnlyFourStage) {
  CheckKernel(MakeMatmul("mm", 64, 64, 128), SmallConfig(4, 1));
}

TEST(PipelineCorrectness, MultiLevelFused) {
  CheckKernel(MakeMatmul("mm", 64, 64, 64), SmallConfig(3, 2));
}

TEST(PipelineCorrectness, MultiLevelRecursive) {
  CheckKernel(MakeMatmul("mm", 64, 64, 64),
              SmallConfig(3, 2, /*inner_fusion=*/false));
}

TEST(PipelineCorrectness, RegisterOnlyPipeline) {
  // Shared memory unpipelined: the register pipeline must fall back to the
  // recursive (drain-per-iteration) form even with fusion requested,
  // because its source buffer's contents change every outer iteration.
  CheckKernel(MakeMatmul("mm", 64, 64, 64), SmallConfig(1, 2));
}

TEST(PipelineCorrectness, BatchedMatmul) {
  CheckKernel(MakeBatchMatmul("bmm", 3, 32, 32, 48), SmallConfig(3, 2));
}

TEST(PipelineCorrectness, SplitK) {
  for (int split : {2, 4}) {
    ScheduleConfig config = SmallConfig(2, 2);
    config.split_k = split;
    CheckKernel(MakeMatmul("mm", 64, 64, 256), config);
  }
}

TEST(PipelineCorrectness, SplitKWithPipelineAndEpilogue) {
  GemmOp op = MakeMatmul("mm", 64, 32, 192);
  op.epilogue_op = ir::EwiseOp::kRelu;
  ScheduleConfig config = SmallConfig(3, 2);
  config.split_k = 2;
  CheckKernel(op, config);
}

TEST(PipelineCorrectness, SplitKBatched) {
  ScheduleConfig config = SmallConfig(2, 1);
  config.split_k = 2;
  CheckKernel(MakeBatchMatmul("bmm", 2, 32, 32, 128), config);
}

TEST(PipelineCorrectness, RectangularProblem) {
  CheckKernel(MakeMatmul("mm", 96, 32, 80), SmallConfig(4, 2));
}

TEST(PipelineCorrectness, EpilogueFusion) {
  GemmOp op = MakeMatmul("mm", 64, 64, 64);
  op.epilogue_op = ir::EwiseOp::kRelu;
  CheckKernel(op, SmallConfig(3, 2));
}

TEST(PipelineCorrectness, ProducerInlinedLate) {
  // ALCOP's ordering (Fig. 5 case 2): f fused into the Shared->Register
  // copy; shared-memory pipelining stays legal.
  GemmOp op = MakeMatmul("mm", 64, 64, 64);
  op.a_producer_op = ir::EwiseOp::kScale;
  op.a_producer_param = 0.5;
  CheckKernel(op, SmallConfig(3, 2), InlineOrder::kAfterPipelining);
}

TEST(PipelineCorrectness, ProducerInlinedEarly) {
  // Fig. 5 case 1: f fused into the Global->Shared copy. Detection refuses
  // shared pipelining (rule 1) but the program must still be correct.
  GemmOp op = MakeMatmul("mm", 64, 64, 64);
  op.a_producer_op = ir::EwiseOp::kScale;
  op.a_producer_param = 0.5;
  CheckKernel(op, SmallConfig(3, 2), InlineOrder::kBeforePipelining);
}

TEST(PipelineCorrectness, ProducerMaterialized) {
  // No inlining: f runs as a standalone pass writing A_ew.
  GemmOp op = MakeMatmul("mm", 64, 64, 64);
  op.a_producer_op = ir::EwiseOp::kGelu;
  CheckKernel(op, SmallConfig(3, 2), InlineOrder::kNone);
}

// Property sweep: every (smem_stages, reg_stages, fusion) combination on a
// non-square problem, including stage counts equal to the loop extents.
struct StageParam {
  int smem_stages;
  int reg_stages;
  bool inner_fusion;
};

class PipelineStageSweep : public ::testing::TestWithParam<StageParam> {};

TEST_P(PipelineStageSweep, MatchesReference) {
  StageParam p = GetParam();
  CheckKernel(MakeMatmul("mm", 64, 32, 96),
              SmallConfig(p.smem_stages, p.reg_stages, p.inner_fusion));
}

std::vector<StageParam> AllStageParams() {
  std::vector<StageParam> params;
  for (int smem = 1; smem <= 5; ++smem) {
    for (int reg = 1; reg <= 2; ++reg) {
      for (bool fusion : {true, false}) {
        params.push_back({smem, reg, fusion});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Stages, PipelineStageSweep, ::testing::ValuesIn(AllStageParams()),
    [](const ::testing::TestParamInfo<StageParam>& info) {
      return "smem" + std::to_string(info.param.smem_stages) + "_reg" +
             std::to_string(info.param.reg_stages) +
             (info.param.inner_fusion ? "_fused" : "_recursive");
    });

// Tile-shape sweep at fixed stage counts.
struct TileParam {
  int64_t tb_m, tb_n, tb_k, warp_m, warp_n, warp_k;
};

class PipelineTileSweep : public ::testing::TestWithParam<TileParam> {};

TEST_P(PipelineTileSweep, MatchesReference) {
  TileParam p = GetParam();
  ScheduleConfig config;
  config.tile = {p.tb_m, p.tb_n, p.tb_k, p.warp_m, p.warp_n, p.warp_k};
  config.smem_stages = 3;
  config.reg_stages = 2;
  CheckKernel(MakeMatmul("mm", 128, 64, 96), config);
}

INSTANTIATE_TEST_SUITE_P(
    Tiles, PipelineTileSweep,
    ::testing::Values(TileParam{32, 32, 16, 16, 16, 8},
                      TileParam{64, 32, 32, 32, 16, 16},
                      TileParam{32, 64, 24, 32, 32, 8},
                      TileParam{128, 64, 32, 32, 32, 16},
                      TileParam{64, 64, 16, 16, 32, 8}),
    [](const ::testing::TestParamInfo<TileParam>& info) {
      const TileParam& p = info.param;
      return "tb" + std::to_string(p.tb_m) + "x" + std::to_string(p.tb_n) +
             "x" + std::to_string(p.tb_k) + "_w" + std::to_string(p.warp_m) +
             "x" + std::to_string(p.warp_n) + "x" + std::to_string(p.warp_k);
    });

}  // namespace
}  // namespace alcop
