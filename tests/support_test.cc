// Tests of the support utilities (checking macros, RNG) and the GPU
// target specs.
#include <gtest/gtest.h>

#include <set>

#include "support/check.h"
#include "support/rng.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace {

TEST(CheckTest, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(ALCOP_CHECK(true) << "never seen");
  EXPECT_NO_THROW(ALCOP_CHECK_EQ(2, 2));
  EXPECT_NO_THROW(ALCOP_CHECK_LT(1, 2));
}

TEST(CheckTest, FailingCheckThrowsWithMessage) {
  try {
    ALCOP_CHECK_EQ(2, 3) << "extra context";
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("2 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("(2 vs 3)"), std::string::npos);
    EXPECT_NE(what.find("extra context"), std::string::npos);
    EXPECT_NE(what.find("support_test.cc"), std::string::npos);
  }
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all values of a small range must appear";
}

TEST(RngTest, UniformRealInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, ChoiceRespectsWeights) {
  Rng rng(11);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) {
    ++counts[rng.Choice({1.0, 0.0, 9.0})];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 4);
}

TEST(RngTest, ChoiceInvalidWeightsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.Choice({}), CheckError);
  EXPECT_THROW(rng.Choice({0.0, 0.0}), CheckError);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(5);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(GpuSpecTest, AmpereAsyncCapabilityTable) {
  target::GpuSpec spec = target::AmpereSpec();
  using ir::MemScope;
  EXPECT_TRUE(spec.SupportsAsyncCopy(MemScope::kGlobal, MemScope::kShared,
                                     /*has_fused_op=*/false));
  EXPECT_FALSE(spec.SupportsAsyncCopy(MemScope::kGlobal, MemScope::kShared,
                                      /*has_fused_op=*/true));
  EXPECT_TRUE(spec.SupportsAsyncCopy(MemScope::kShared, MemScope::kRegister,
                                     /*has_fused_op=*/true));
  EXPECT_FALSE(spec.SupportsAsyncCopy(MemScope::kGlobal, MemScope::kRegister,
                                      /*has_fused_op=*/false));
}

TEST(GpuSpecTest, VoltaLacksCpAsync) {
  target::GpuSpec spec = target::VoltaLikeSpec();
  using ir::MemScope;
  EXPECT_FALSE(spec.SupportsAsyncCopy(MemScope::kGlobal, MemScope::kShared,
                                      /*has_fused_op=*/false));
  EXPECT_TRUE(spec.SupportsAsyncCopy(MemScope::kShared, MemScope::kRegister,
                                     /*has_fused_op=*/false));
}

TEST(GpuSpecTest, GenerationsScaleSensibly) {
  target::GpuSpec volta = target::VoltaLikeSpec();
  target::GpuSpec ampere = target::AmpereSpec();
  target::GpuSpec hopper = target::HopperLikeSpec();
  EXPECT_LT(volta.tc_flops_per_sm_per_cycle, ampere.tc_flops_per_sm_per_cycle);
  EXPECT_LT(ampere.tc_flops_per_sm_per_cycle, hopper.tc_flops_per_sm_per_cycle);
  // Compute grows faster than bandwidth: the pipelining motivation.
  double ampere_intensity = ampere.tc_flops_per_sm_per_cycle * ampere.num_sms /
                            ampere.dram_bw_bytes_per_cycle;
  double hopper_intensity = hopper.tc_flops_per_sm_per_cycle * hopper.num_sms /
                            hopper.dram_bw_bytes_per_cycle;
  EXPECT_GT(hopper_intensity, ampere_intensity);
}

TEST(GpuSpecTest, CyclesToUs) {
  target::GpuSpec spec = target::AmpereSpec();
  EXPECT_NEAR(spec.CyclesToUs(1410.0), 1.0, 1e-9);  // 1.41 GHz
}

}  // namespace
}  // namespace alcop
