// Tests of the IR text parser, centered on the round-trip property:
// Parse(ToString(stmt)) must be structurally equal to stmt (and print back
// to the identical text) for programs produced by the whole compiler flow.
#include <gtest/gtest.h>

#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/structural_equal.h"
#include "sim/executor.h"
#include "sim/launch.h"
#include "support/check.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace ir {
namespace {

TEST(ParserTest, ExprRoundTrip) {
  Var ko = MakeVar("ko");
  Var ki = MakeVar("ki");
  for (const char* text : {
           "(ko + 2) % 3",
           "ko * 16 + ki",
           "(ko + (ki + 1) / 2) % 3",
           "min(ko, ki * 4) + max(ko, 2)",
           "ko < 4 && ki == 0",
           "ko * (ki + 1) - 7",
       }) {
    Expr parsed = ParseExpr(text, {ko, ki});
    EXPECT_EQ(ToString(parsed), text) << "round trip of '" << text << "'";
  }
}

TEST(ParserTest, ExprEvaluatesCorrectly) {
  Var i = MakeVar("i");
  Expr e = ParseExpr("(i + 5) % 4 * 2", {i});
  EXPECT_EQ(Evaluate(e, {{i.get(), 3}}), ((3 + 5) % 4) * 2);
}

TEST(ParserTest, UnboundVariableFails) {
  EXPECT_THROW(ParseExpr("i + 1", {}), CheckError);
}

TEST(ParserTest, SimpleProgramParses) {
  Buffer src = MakeBuffer("src", MemScope::kGlobal, {8, 16});
  std::string text =
      "alloc buf: shared fp16[2, 16]\n"
      "for ko in 0..8 serial {\n"
      "  copy buf[ko % 2, 0][1, 16] <- src[ko, 0][1, 16]\n"
      "  barrier\n"
      "}\n";
  Stmt program = ParseStmt(text, {src});
  EXPECT_EQ(ToString(program), text);
}

TEST(ParserTest, UnknownBufferFails) {
  EXPECT_THROW(ParseStmt("fill nothing[0][4] = 0\n"), CheckError);
}

TEST(ParserTest, SyntaxErrorMentionsLine) {
  try {
    ParseStmt("alloc buf shared fp16[4]\n");  // missing ':'
    FAIL() << "expected a parse error";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("parse error at line 1"),
              std::string::npos)
        << e.what();
  }
}

// Every parsed statement carries the line/column where its keyword
// started; the spans are metadata only, so printing is unaffected.
TEST(ParserTest, StatementsCarrySourceSpans) {
  Buffer src = MakeBuffer("src", MemScope::kGlobal, {8, 16});
  std::string text =
      "alloc buf: shared fp16[2, 16]\n"
      "for ko in 0..8 serial {\n"
      "  copy buf[ko % 2, 0][1, 16] <- src[ko, 0][1, 16]\n"
      "  barrier\n"
      "}\n";
  Stmt program = ParseStmt(text, {src});
  // The top level is a block of [alloc, for]; spans point at the keywords.
  const auto* block = static_cast<const BlockNode*>(program.get());
  ASSERT_EQ(block->seq.size(), 2u);
  EXPECT_EQ(block->seq[0]->span.line, 1);
  EXPECT_EQ(block->seq[0]->span.column, 1);
  EXPECT_EQ(block->seq[1]->span.line, 2);
  const auto* loop = static_cast<const ForNode*>(block->seq[1].get());
  const auto* body = static_cast<const BlockNode*>(loop->body.get());
  ASSERT_EQ(body->seq.size(), 2u);
  EXPECT_EQ(body->seq[0]->span.line, 3);
  EXPECT_EQ(body->seq[0]->span.column, 3);  // indented two spaces
  EXPECT_EQ(body->seq[1]->span.line, 4);
  // Spans do not alter printing.
  EXPECT_EQ(ToString(program), text);
}

// Parse errors carry both line and column.
TEST(ParserTest, SyntaxErrorMentionsColumn) {
  try {
    ParseStmt("alloc buf shared fp16[4]\n");  // ':' missing at column 11
    FAIL() << "expected a parse error";
  } catch (const CheckError& e) {
    std::string text = e.what();
    EXPECT_NE(text.find("[P001]"), std::string::npos) << text;
    EXPECT_NE(text.find("line 1:11"), std::string::npos) << text;
  }
}

TEST(ParserTest, EwiseAndAccumulateForms) {
  Buffer a = MakeBuffer("a", MemScope::kGlobal, {16});
  Buffer b = MakeBuffer("b", MemScope::kGlobal, {16});
  std::string text =
      "copy a[0][16] <- scale[0.5](b[0][16])\n"
      "copy a[0][16] += b[0][16]\n"
      "copy a[0][16] <- gelu(b[0][16])\n";
  Stmt program = ParseStmt(text, {a, b});
  EXPECT_EQ(ToString(program), text);
}

TEST(ParserTest, SyncAndPragmaForms) {
  std::string text =
      "pragma pipeline_stages(buf) = 3 {\n"
      "  alloc buf: shared fp16[3, 16]\n"
      "  buf.producer_acquire  @group0\n"
      "  buf.producer_commit  @group0\n"
      "  buf.consumer_wait(ahead=1)  @group0\n"
      "  buf.consumer_release  @group0\n"
      "}\n";
  Stmt program = ParseStmt(text);
  EXPECT_EQ(ToString(program), text);
  // The pragma's buffer must resolve to the alloc inside its body.
  const auto* pragma = static_cast<const PragmaNode*>(program.get());
  EXPECT_EQ(pragma->buffer->shape, (std::vector<int64_t>{3, 16}));
}

// The flagship property: the entire compiler output round-trips.
TEST(ParserTest, CompiledKernelRoundTrips) {
  schedule::GemmOp op = schedule::MakeMatmul("mm", 64, 64, 64);
  schedule::ScheduleConfig config;
  config.tile = {32, 32, 16, 16, 16, 8};
  config.smem_stages = 3;
  config.reg_stages = 2;
  sim::CompiledKernel compiled =
      sim::CompileKernel(op, config, target::AmpereSpec());

  std::string printed = ToString(compiled.transformed.stmt);
  Stmt reparsed = ParseStmt(
      printed, {compiled.kernel.a, compiled.kernel.b, compiled.kernel.c});
  EXPECT_EQ(ToString(reparsed), printed);
  EXPECT_TRUE(StructuralEqual(reparsed, compiled.transformed.stmt));
}

TEST(ParserTest, ReparsedKernelExecutesIdentically) {
  schedule::GemmOp op = schedule::MakeMatmul("mm", 64, 32, 96);
  op.epilogue_op = EwiseOp::kRelu;
  schedule::ScheduleConfig config;
  config.tile = {32, 32, 16, 16, 16, 8};
  config.smem_stages = 3;
  config.reg_stages = 2;
  config.split_k = 2;
  sim::CompiledKernel compiled =
      sim::CompileKernel(op, config, target::AmpereSpec());

  std::vector<Buffer> externals = {compiled.kernel.a, compiled.kernel.b,
                                   compiled.kernel.c};
  if (compiled.kernel.workspace != nullptr) {
    externals.push_back(compiled.kernel.workspace);
  }
  Stmt reparsed = ParseStmt(ToString(compiled.transformed.stmt), externals);

  std::vector<float> a(static_cast<size_t>(op.m * op.k), 0.25f);
  std::vector<float> b(static_cast<size_t>(op.n * op.k), -0.5f);
  sim::Executor original, round_trip;
  original.Bind(compiled.kernel.a, a);
  original.Bind(compiled.kernel.b, b);
  original.Run(compiled.transformed.stmt);
  round_trip.Bind(compiled.kernel.a, a);
  round_trip.Bind(compiled.kernel.b, b);
  round_trip.Run(reparsed);
  EXPECT_EQ(original.Data(compiled.kernel.c),
            round_trip.Data(compiled.kernel.c));
}

}  // namespace
}  // namespace ir
}  // namespace alcop
