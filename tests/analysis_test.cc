// Tests of the shared IR analyses (src/ir/analysis.*): loop-stack walking,
// pipeline-hint collection, producer/consumer reconstruction and FLOP
// counting.
#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "support/check.h"

namespace alcop {
namespace ir {
namespace {

BufferRegion Region(const Buffer& buffer, std::vector<Expr> offsets,
                    std::vector<int64_t> sizes) {
  BufferRegion region;
  region.buffer = buffer;
  region.offsets = std::move(offsets);
  region.sizes = std::move(sizes);
  return region;
}

struct TestProgram {
  Buffer src = MakeBuffer("src", MemScope::kGlobal, {8, 16});
  Buffer buf = MakeBuffer("buf", MemScope::kShared, {4, 4});
  Buffer reg = MakeBuffer("reg", MemScope::kRegister, {4, 4});
  Buffer acc = MakeBuffer("acc", MemScope::kAccumulator, {4, 4}, 4);
  Buffer reg_b = MakeBuffer("reg_b", MemScope::kRegister, {4, 4});
  Var ko = MakeVar("ko");
  Var ki = MakeVar("ki");
  Stmt stmt;

  TestProgram() {
    Stmt load = Copy(Region(buf, {Int(0), Int(0)}, {4, 4}),
                     Region(src, {ko, Int(0)}, {1, 16}));
    Stmt load_reg = Copy(Region(reg, {Int(0), Int(0)}, {4, 4}),
                         Region(buf, {Int(0), Int(0)}, {4, 4}));
    Stmt load_reg_b = Copy(Region(reg_b, {Int(0), Int(0)}, {4, 4}),
                           Region(buf, {Int(0), Int(0)}, {4, 4}));
    Stmt mma = Mma(Region(acc, {Int(0), Int(0)}, {4, 4}),
                   Region(reg, {Int(0), Int(0)}, {4, 4}),
                   Region(reg_b, {Int(0), Int(0)}, {4, 4}));
    Stmt inner = For(ki, 4, ForKind::kSerial,
                     Block({load_reg, load_reg_b, mma}));
    Stmt loop = For(ko, 8, ForKind::kSerial, Block({load, inner}));
    stmt = Pragma(kPipelinePragma, buf, 2, Block({Alloc(buf), loop}));
  }
};

TEST(AnalysisTest, WalkWithLoopsTracksNesting) {
  TestProgram p;
  int copies_at_depth1 = 0, copies_at_depth2 = 0, mmas = 0;
  WalkWithLoops(p.stmt, [&](const Stmt& s, const std::vector<const ForNode*>& loops) {
    if (s->kind == StmtKind::kCopy) {
      if (loops.size() == 1) ++copies_at_depth1;
      if (loops.size() == 2) ++copies_at_depth2;
    }
    if (s->kind == StmtKind::kMma) {
      ++mmas;
      ASSERT_EQ(loops.size(), 2u);
      EXPECT_EQ(loops[0]->var->name, "ko");
      EXPECT_EQ(loops[1]->var->name, "ki");
    }
  });
  EXPECT_EQ(copies_at_depth1, 1);
  EXPECT_EQ(copies_at_depth2, 2);
  EXPECT_EQ(mmas, 1);
}

TEST(AnalysisTest, CollectAllocatedBuffers) {
  TestProgram p;
  std::vector<Buffer> buffers = CollectAllocatedBuffers(p.stmt);
  ASSERT_EQ(buffers.size(), 1u);
  EXPECT_EQ(buffers[0].get(), p.buf.get());
}

TEST(AnalysisTest, CollectPipelineHints) {
  TestProgram p;
  std::vector<PipelineHint> hints = CollectPipelineHints(p.stmt);
  ASSERT_EQ(hints.size(), 1u);
  EXPECT_EQ(hints[0].buffer.get(), p.buf.get());
  EXPECT_EQ(hints[0].stages, 2);
}

TEST(AnalysisTest, HintWithOneStageThrows) {
  Buffer buf = MakeBuffer("b", MemScope::kShared, {4});
  Stmt prog = Pragma(kPipelinePragma, buf, 1, Alloc(buf));
  EXPECT_THROW(CollectPipelineHints(prog), CheckError);
}

TEST(AnalysisTest, UnrelatedPragmasAreIgnored) {
  Buffer buf = MakeBuffer("b", MemScope::kShared, {4});
  Stmt prog = Pragma("unroll_hint", buf, 4, Alloc(buf));
  EXPECT_TRUE(CollectPipelineHints(prog).empty());
}

TEST(AnalysisTest, MapProducers) {
  TestProgram p;
  auto producers = MapProducers(p.stmt);
  ASSERT_EQ(producers[p.buf.get()].size(), 1u);
  ASSERT_EQ(producers[p.reg.get()].size(), 1u);
  EXPECT_EQ(producers.count(p.src.get()), 0u);  // never written
  // Producer loop stacks: buf's copy sits under ko only.
  EXPECT_EQ(producers[p.buf.get()][0].loops.size(), 1u);
  EXPECT_EQ(producers[p.reg.get()][0].loops.size(), 2u);
}

TEST(AnalysisTest, MapConsumers) {
  TestProgram p;
  auto consumers = MapConsumers(p.stmt);
  // buf feeds both register loads; src feeds the shared load; the
  // registers feed the MMA; the accumulator is not counted as consumed.
  EXPECT_EQ(consumers[p.buf.get()].size(), 2u);
  EXPECT_EQ(consumers[p.src.get()].size(), 1u);
  EXPECT_EQ(consumers[p.reg.get()].size(), 1u);
  EXPECT_EQ(consumers[p.reg_b.get()].size(), 1u);
  EXPECT_EQ(consumers.count(p.acc.get()), 0u);
}

TEST(AnalysisTest, RegionUsesVar) {
  TestProgram p;
  BufferRegion region = Region(p.src, {p.ko, Int(0)}, {1, 16});
  EXPECT_TRUE(RegionUsesVar(region, p.ko));
  EXPECT_FALSE(RegionUsesVar(region, p.ki));
  BufferRegion indirect =
      Region(p.src, {Add(Mul(p.ko, 2), p.ki), Int(0)}, {1, 16});
  EXPECT_TRUE(RegionUsesVar(indirect, p.ki));
}

TEST(AnalysisTest, CountFlopsMultipliesLoopExtents) {
  TestProgram p;
  // One MMA of 2*4*4*4 flops under ki(4) x ko(8).
  EXPECT_EQ(CountFlops(p.stmt), 2 * 4 * 4 * 4 * 4 * 8);
}

TEST(AnalysisTest, CountFlopsRequiresConstantExtents) {
  Buffer acc = MakeBuffer("acc", MemScope::kAccumulator, {4, 4}, 4);
  Buffer reg = MakeBuffer("r", MemScope::kRegister, {4, 4});
  Var i = MakeVar("i");
  Var n = MakeVar("n");  // symbolic extent
  Stmt mma = Mma(Region(acc, {Int(0), Int(0)}, {4, 4}),
                 Region(reg, {Int(0), Int(0)}, {4, 4}),
                 Region(reg, {Int(0), Int(0)}, {4, 4}));
  Stmt loop = For(i, n, ForKind::kSerial, mma);
  EXPECT_THROW(CountFlops(loop), CheckError);
}

}  // namespace
}  // namespace ir
}  // namespace alcop
