// Tests of the alcopd serving stack: the wire protocol (framing + JSON
// subset), the client, and an end-to-end daemon on a unix socket —
// fast-lane routing, slow-lane batched compiles, warm-started tuning and
// the stored-tuning warm-restart path.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "schedule/tensor.h"
#include "serving/client.h"
#include "serving/persist.h"
#include "serving/protocol.h"
#include "serving/server.h"
#include "sim/sim_cache.h"
#include "target/gpu_spec.h"
#include "tuner/records.h"

namespace alcop {
namespace {

using serving::JsonValue;
using serving::ParseJson;

TEST(ProtocolJsonTest, ParsesScalarsObjectsAndArrays) {
  std::optional<JsonValue> v = ParseJson(
      "{\"id\": 7, \"ok\": true, \"name\": \"a\\\"b\", \"x\": null, "
      "\"tb\": [128, 64, 32], \"f\": -1.5e3}");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->Find("id")->NumberOr(0), 7.0);
  EXPECT_TRUE(v->Find("ok")->BoolOr(false));
  EXPECT_EQ(v->Find("name")->StringOr(""), "a\"b");
  EXPECT_EQ(v->Find("x")->kind, JsonValue::Kind::kNull);
  ASSERT_EQ(v->Find("tb")->array.size(), 3u);
  EXPECT_EQ(v->Find("tb")->array[1].NumberOr(0), 64.0);
  EXPECT_EQ(v->Find("f")->NumberOr(0), -1500.0);
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(ProtocolJsonTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "{\"a\":}", "{\"a\":1,}", "[1,2", "{\"a\" 1}", "tru",
        "{\"a\":1} extra", "\"unterminated"}) {
    EXPECT_FALSE(ParseJson(bad).has_value()) << bad;
  }
}

TEST(ProtocolJsonTest, DepthIsBounded) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep).has_value());
}

TEST(ProtocolJsonTest, EscapeRoundTripsThroughParser) {
  std::string nasty = "a\"b\\c\nd\te\rf";
  std::string doc = "{\"s\": \"" + serving::JsonEscape(nasty) + "\"}";
  std::optional<JsonValue> v = ParseJson(doc);
  ASSERT_TRUE(v.has_value()) << doc;
  EXPECT_EQ(v->Find("s")->StringOr(""), nasty);
}

TEST(ProtocolFrameTest, RoundTripsOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string big(100000, 'x');
  for (const std::string& payload : {std::string("{}"), std::string(), big}) {
    ASSERT_TRUE(serving::WriteFrame(fds[0], payload));
    std::string read_back;
    ASSERT_TRUE(serving::ReadFrame(fds[1], &read_back));
    EXPECT_EQ(read_back, payload);
  }
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ProtocolFrameTest, OversizedLengthPrefixIsRejected) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  uint32_t huge = serving::kMaxFrameBytes + 1;
  ASSERT_EQ(::write(fds[0], &huge, sizeof(huge)),
            static_cast<ssize_t>(sizeof(huge)));
  std::string payload;
  EXPECT_FALSE(serving::ReadFrame(fds[1], &payload));
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// End-to-end daemon tests.
// ---------------------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::ResetSimCache();
    tuner::TuningStore::Global().Clear();
    socket_path_ =
        ::testing::TempDir() + "/alcopd_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".sock";
    // TempDir test names can push an AF_UNIX path past sun_path; keep it
    // short instead of silently truncating.
    if (socket_path_.size() >= 100) {
      socket_path_ = "/tmp/alcopd_test_" + std::to_string(::getpid()) + ".sock";
    }
    options_.socket_path = socket_path_;
    options_.spec = target::AmpereSpec();
    options_.default_trials = 6;
    options_.space.tb_m = {64, 128};
    options_.space.tb_n = {64};
    options_.space.tb_k = {32};
    options_.cache_path = "";  // no persistence unless a test opts in
    options_.persist_on_shutdown = false;
  }

  void TearDown() override {
    std::remove(socket_path_.c_str());
    sim::ResetSimCache();
    tuner::TuningStore::Global().Clear();
  }

  std::string socket_path_;
  serving::ServerOptions options_;
};

TEST_F(ServerTest, PingStatsAndErrorPaths) {
  serving::Server server(options_);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  serving::Client client;
  ASSERT_TRUE(client.Connect(socket_path_, &error)) << error;

  std::optional<JsonValue> pong = client.Call("{\"id\":1,\"method\":\"ping\"}");
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->Find("ok")->BoolOr(false));
  EXPECT_EQ(pong->Find("id")->NumberOr(0), 1.0);

  std::optional<JsonValue> stats =
      client.Call("{\"id\":2,\"method\":\"stats\"}");
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->Find("ok")->BoolOr(false));
  EXPECT_NE(stats->Find("resident_bytes"), nullptr);

  std::optional<JsonValue> bad = client.Call("{\"id\":3,\"method\":\"nope\"}");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(bad->Find("ok")->BoolOr(true));
  EXPECT_NE(bad->Find("error")->StringOr("").find("unknown method"),
            std::string::npos);

  std::optional<JsonValue> malformed = client.Call("this is not json");
  ASSERT_TRUE(malformed.has_value());
  EXPECT_FALSE(malformed->Find("ok")->BoolOr(true));

  server.Stop();
}

TEST_F(ServerTest, StatsReportsInflightAndPerLaneLatency) {
  serving::Server server(options_);
  ASSERT_TRUE(server.Start());
  serving::Client client;
  ASSERT_TRUE(client.Connect(socket_path_));

  // A couple of fast-lane requests so the lane histogram has data by the
  // time stats is answered (stats itself is a fast-lane request too).
  ASSERT_TRUE(client.Call("{\"id\":1,\"method\":\"ping\"}").has_value());
  ASSERT_TRUE(client.Call("{\"id\":2,\"method\":\"ping\"}").has_value());

  std::optional<JsonValue> stats =
      client.Call("{\"id\":3,\"method\":\"stats\"}");
  ASSERT_TRUE(stats.has_value());
  ASSERT_TRUE(stats->Find("ok")->BoolOr(false));
  // The stats request is still in flight while it computes its answer.
  EXPECT_GE(stats->Find("inflight")->NumberOr(-1), 1.0);
  const JsonValue* latency = stats->Find("latency");
  ASSERT_NE(latency, nullptr);
  const JsonValue* fast = latency->Find("fast");
  ASSERT_NE(fast, nullptr);
  EXPECT_GE(fast->Find("count")->NumberOr(0), 2.0);
  EXPECT_GT(fast->Find("p50_us")->NumberOr(0), 0.0);
  EXPECT_GE(fast->Find("p99_us")->NumberOr(0),
            fast->Find("p50_us")->NumberOr(0));
  const JsonValue* slow = latency->Find("slow");
  ASSERT_NE(slow, nullptr);
  EXPECT_NE(slow->Find("count"), nullptr);

  server.Stop();
}

TEST_F(ServerTest, CompileMissesThenHitsFastLane) {
  serving::Server server(options_);
  ASSERT_TRUE(server.Start());
  serving::Client client;
  ASSERT_TRUE(client.Connect(socket_path_));

  std::string request =
      "{\"id\":1,\"method\":\"compile\",\"m\":512,\"n\":512,\"k\":512,"
      "\"config\":{\"tb\":[128,128,32],\"warp\":[64,64,16],\"smem\":2}}";
  std::optional<JsonValue> cold = client.Call(request);
  ASSERT_TRUE(cold.has_value());
  ASSERT_TRUE(cold->Find("ok")->BoolOr(false))
      << cold->Find("error")->StringOr("");
  ASSERT_TRUE(cold->Find("feasible")->BoolOr(false));
  double cold_cycles = cold->Find("cycles")->NumberOr(0);
  EXPECT_GT(cold_cycles, 0);

  // Second time through: the timing is cached, the fast lane answers,
  // and the value is identical.
  std::optional<JsonValue> warm = client.Call(request);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->Find("cycles")->NumberOr(-1), cold_cycles);

  sim::SimCacheStats stats = sim::GetSimCacheStats();
  EXPECT_GE(stats.hits, 1u);

  std::optional<JsonValue> invalid = client.Call(
      "{\"id\":9,\"method\":\"compile\",\"m\":512,\"n\":512,\"k\":512}");
  ASSERT_TRUE(invalid.has_value());
  EXPECT_FALSE(invalid->Find("ok")->BoolOr(true));
  server.Stop();
}

TEST_F(ServerTest, BatchedCompilesFromConcurrentClientsAllAnswer) {
  serving::Server server(options_);
  ASSERT_TRUE(server.Start());

  // Several clients slam the slow lane at once; the worker drains them
  // as one batched replay round. Every request must get its own answer.
  std::vector<std::thread> clients;
  std::vector<double> cycles(6, 0.0);
  for (int i = 0; i < 6; ++i) {
    clients.emplace_back([&, i] {
      serving::Client client;
      ASSERT_TRUE(client.Connect(socket_path_));
      std::string request =
          "{\"id\":" + std::to_string(i) +
          ",\"method\":\"compile\",\"m\":512,\"n\":512,\"k\":" +
          std::to_string(512 + 128 * i) +
          ",\"config\":{\"tb\":[128,128,32],\"warp\":[64,64,16],"
          "\"smem\":2}}";
      std::optional<JsonValue> response = client.Call(request);
      ASSERT_TRUE(response.has_value());
      ASSERT_TRUE(response->Find("ok")->BoolOr(false));
      EXPECT_EQ(response->Find("id")->NumberOr(-1), i);
      cycles[static_cast<size_t>(i)] = response->Find("cycles")->NumberOr(0);
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (double c : cycles) EXPECT_GT(c, 0.0);

  // Batched replay must be bit-identical to the direct path.
  schedule::ScheduleConfig config;
  config.tile = {128, 128, 32, 64, 64, 16};
  config.smem_stages = 2;
  sim::KernelTiming direct = sim::CachedCompileAndSimulate(
      schedule::MakeMatmul("mm", 512, 512, 640), config, options_.spec);
  EXPECT_EQ(cycles[1], direct.cycles);
  server.Stop();
}

TEST_F(ServerTest, TuneSearchesThenWarmRestartsFromStore) {
  serving::Server server(options_);
  ASSERT_TRUE(server.Start());
  serving::Client client;
  ASSERT_TRUE(client.Connect(socket_path_));

  std::string request =
      "{\"id\":1,\"method\":\"tune\",\"m\":512,\"n\":768,\"k\":1024}";
  std::optional<JsonValue> cold = client.Call(request);
  ASSERT_TRUE(cold.has_value());
  ASSERT_TRUE(cold->Find("ok")->BoolOr(false))
      << cold->Find("error")->StringOr("");
  EXPECT_EQ(cold->Find("source")->StringOr(""), "search");
  double best = cold->Find("best_cycles")->NumberOr(0);
  EXPECT_GT(best, 0);

  // Same shape again: answered from the TuningStore without a search,
  // with the identical best.
  std::optional<JsonValue> warm = client.Call(request);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->Find("source")->StringOr(""), "store");
  EXPECT_EQ(warm->Find("best_cycles")->NumberOr(-1), best);

  // A neighboring shape warm-starts from the stored one.
  std::optional<JsonValue> neighbor = client.Call(
      "{\"id\":2,\"method\":\"tune\",\"m\":512,\"n\":768,\"k\":1280}");
  ASSERT_TRUE(neighbor.has_value());
  ASSERT_TRUE(neighbor->Find("ok")->BoolOr(false));
  EXPECT_EQ(neighbor->Find("source")->StringOr(""), "search");
  EXPECT_EQ(neighbor->Find("warm_source")->StringOr(""),
            "matmul/1/512x768x1024");
  EXPECT_GT(neighbor->Find("warm_seeds")->NumberOr(0), 0);

  // force re-runs the search even for a stored shape, and never returns
  // a worse best than the store (the seeds replay the stored best).
  std::optional<JsonValue> forced = client.Call(
      "{\"id\":3,\"method\":\"tune\",\"m\":512,\"n\":768,\"k\":1024,"
      "\"force\":true}");
  ASSERT_TRUE(forced.has_value());
  ASSERT_TRUE(forced->Find("ok")->BoolOr(false));
  EXPECT_EQ(forced->Find("source")->StringOr(""), "search");
  EXPECT_LE(forced->Find("best_cycles")->NumberOr(1e30), best);
  server.Stop();
}

TEST_F(ServerTest, ShutdownMethodStopsTheDaemonAndPersists) {
  options_.cache_path = ::testing::TempDir() + "/alcopd_shutdown_cache.alcp";
  std::remove(options_.cache_path.c_str());
  options_.persist_on_shutdown = true;

  serving::Server server(options_);
  ASSERT_TRUE(server.Start());
  serving::Client client;
  ASSERT_TRUE(client.Connect(socket_path_));
  std::optional<JsonValue> compiled = client.Call(
      "{\"id\":1,\"method\":\"compile\",\"m\":512,\"n\":512,\"k\":512,"
      "\"config\":{\"tb\":[128,128,32],\"warp\":[64,64,16],\"smem\":2}}");
  ASSERT_TRUE(compiled.has_value());

  std::optional<JsonValue> ack =
      client.Call("{\"id\":2,\"method\":\"shutdown\"}");
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->Find("ok")->BoolOr(false));
  server.Wait();  // returns because shutdown was requested
  server.Stop();

  // Shutdown persisted the cache; a fresh load finds the compiled entry.
  sim::ResetSimCache();
  serving::PersistStats loaded =
      serving::LoadCache(options_.cache_path, options_.spec);
  EXPECT_TRUE(loaded.ok) << loaded.error;
  EXPECT_GE(loaded.timings, 1u);
  std::remove(options_.cache_path.c_str());
}

}  // namespace
}  // namespace alcop
