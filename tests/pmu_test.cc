// Tests of the PMU performance-counter subsystem (sim/pmu.h): the
// interpreter/replay differential, determinism across thread counts,
// conservation against the analytic traffic report, the wave-to-launch
// scaling helper, and the roofline / calibration layers built on top.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "perfmodel/calibration.h"
#include "perfmodel/roofline.h"
#include "sim/desim.h"
#include "sim/launch.h"
#include "sim/pmu.h"
#include "sim/traffic_report.h"
#include "support/parallel.h"
#include "target/gpu_spec.h"
#include "tuner/strategy.h"
#include "workloads/ops.h"

namespace alcop {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool SamePmu(const sim::KernelPmu& a, const sim::KernelPmu& b) {
  return a.collected == b.collected &&
         std::memcmp(&a.total, &b.total, sizeof(sim::PmuCounters)) == 0 &&
         std::memcmp(&a.batch, &b.batch, sizeof(sim::PmuCounters)) == 0 &&
         BitEqual(a.achieved_occupancy, b.achieved_occupancy);
}

// Raw bytes of the counter payload, for cross-run equality assertions.
std::string PmuBytes(const sim::KernelPmu& pmu) {
  std::string bytes;
  bytes.append(reinterpret_cast<const char*>(&pmu.total),
               sizeof(sim::PmuCounters));
  bytes.append(reinterpret_cast<const char*>(&pmu.batch),
               sizeof(sim::PmuCounters));
  bytes.append(reinterpret_cast<const char*>(&pmu.achieved_occupancy),
               sizeof(double));
  return bytes;
}

schedule::ScheduleConfig BigConfig() {
  schedule::ScheduleConfig config;
  config.tile = {.tb_m = 128, .tb_n = 128, .tb_k = 32,
                 .warp_m = 64, .warp_n = 64, .warp_k = 16};
  config.smem_stages = 3;
  config.reg_stages = 2;
  return config;
}

// A small but diverse probe set: a handful of configs from two Fig. 10
// operators (one plain matmul, one batched).
std::vector<std::pair<schedule::GemmOp, schedule::ScheduleConfig>>
ProbeConfigs() {
  target::GpuSpec spec = target::AmpereSpec();
  std::vector<std::pair<schedule::GemmOp, schedule::ScheduleConfig>> probes;
  std::vector<schedule::GemmOp> ops = workloads::BenchmarkOps();
  for (const schedule::GemmOp& op : {ops[0], ops[7]}) {
    tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
    for (size_t c = 0; c < task.space.size(); c += task.space.size() / 6 + 1) {
      probes.emplace_back(op, task.space[c]);
    }
  }
  return probes;
}

TEST(PmuTest, InterpreterAndReplayProduceIdenticalCounters) {
  target::GpuSpec spec = target::AmpereSpec();
  sim::ReplayArena arena;
  int feasible = 0;
  for (const auto& [op, config] : ProbeConfigs()) {
    sim::SimProgram program = sim::CompileSimProgram(op, config, spec);
    if (!program.feasible) continue;
    ++feasible;
    sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);
    sim::KernelPmu interp_pmu;
    sim::KernelPmu replay_pmu;
    sim::KernelTiming interp = sim::InterpretKernel(compiled, spec, &interp_pmu);
    sim::KernelTiming replay = sim::ReplaySimProgram(program, &arena, &replay_pmu);
    ASSERT_TRUE(interp.feasible);
    EXPECT_TRUE(BitEqual(interp.cycles, replay.cycles));
    EXPECT_TRUE(SamePmu(interp_pmu, replay_pmu))
        << op.name << " " << config.ToString();
    EXPECT_TRUE(interp_pmu.collected);
  }
  EXPECT_GT(feasible, 3);
}

TEST(PmuTest, CountersAreBitIdenticalAcrossThreadCounts) {
  target::GpuSpec spec = target::AmpereSpec();
  auto probes = ProbeConfigs();
  auto sweep = [&] {
    // One local arena per measurement: the pool's thread-local pools are
    // irrelevant here, only the counter bytes matter.
    return support::ParallelMap(probes.size(), [&](size_t i) {
      sim::SimProgram program =
          sim::CompileSimProgram(probes[i].first, probes[i].second, spec);
      if (!program.feasible) return std::string();
      sim::ReplayArena arena;
      sim::KernelPmu pmu;
      sim::ReplaySimProgram(program, &arena, &pmu);
      return PmuBytes(pmu);
    });
  };
  std::vector<std::string> baseline;
  for (int threads : {1, 2, 8}) {
    support::SetGlobalThreads(threads);
    std::vector<std::string> run = sweep();
    if (baseline.empty()) {
      baseline = run;
    } else {
      EXPECT_EQ(baseline, run) << "thread count " << threads;
    }
  }
  support::SetGlobalThreads(support::ThreadsFromEnv());
}

TEST(PmuTest, CountersConserveAgainstTrafficReport) {
  // 2048^3 plain matmul: the traffic report's whole-kernel byte counts
  // must equal the PMU's per-threadblock rates times the launch size, up
  // to the pipeline-prologue overhead the simulated kernel really issues
  // (stages - 1 extra tile loads per pipeline, which the steady-state
  // traffic report does not count).
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op = schedule::MakeMatmul("mm", 2048, 2048, 2048);
  schedule::ScheduleConfig config = BigConfig();
  sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);
  sim::TrafficReport report = sim::AnalyzeKernelTraffic(compiled, spec);

  sim::KernelPmu pmu;
  sim::KernelTiming timing = sim::InterpretKernel(compiled, spec, &pmu);
  ASSERT_TRUE(timing.feasible);
  ASSERT_TRUE(pmu.collected);

  int64_t total = compiled.kernel.TotalThreadblocks();
  int64_t per_batch =
      static_cast<int64_t>(timing.threadblocks_per_sm) * spec.num_sms;
  int64_t wave_total = std::min(total, per_batch);
  // The steady-state batch simulates one SM hosting this many TBs.
  double wave_tbs = static_cast<double>(std::min<int64_t>(
      timing.threadblocks_per_sm,
      (wave_total + spec.num_sms - 1) / spec.num_sms));
  auto kernel_total = [&](double batch_value) {
    return batch_value / wave_tbs * static_cast<double>(total);
  };
  auto near = [](double measured, double expected) {
    EXPECT_NEAR(measured, expected, 1e-6 * expected + 1e-6);
  };
  // 64 outer iterations load (stages - 1) prologue tiles on top; the
  // register pipeline runs 128 inner steps plus its own prologue fetch.
  double outer = static_cast<double>(op.k / config.tile.tb_k);
  double inner = outer * (config.tile.tb_k / config.tile.warp_k);
  double smem_prologue = (outer + config.smem_stages - 1) / outer;
  double reg_prologue = (inner + config.reg_stages - 1) / inner;
  near(kernel_total(pmu.batch.llc_read_bytes),
       report.llc_read_bytes * smem_prologue);
  near(kernel_total(pmu.batch.dram_read_bytes),
       report.dram_read_bytes * smem_prologue);
  near(kernel_total(pmu.batch.lds_read_bytes),
       report.lds_read_bytes * reg_prologue);
  near(kernel_total(pmu.batch.dram_write_bytes), report.dram_write_bytes);
  near(kernel_total(pmu.batch.flops), report.flops);
  // The async-copy pipe carries both pipelined levels for this schedule:
  // global->shared and shared->register.
  near(pmu.batch.cp_async_bytes,
       pmu.batch.llc_read_bytes + pmu.batch.lds_read_bytes);
}

TEST(PmuTest, ScaleKernelPmuMirrorsTheWaveStructure) {
  sim::PmuCounters full;
  full.flops = 100.0;
  full.llc_read_transactions = 7;
  full.inflight_depth[2] = 3;
  sim::PmuCounters rem;
  rem.flops = 40.0;
  rem.llc_read_transactions = 2;
  rem.inflight_depth[2] = 1;

  // full_batches full waves plus a remainder wave.
  sim::KernelPmu pmu;
  sim::ScaleKernelPmu(&pmu, full, &rem, 3);
  EXPECT_TRUE(pmu.collected);
  EXPECT_DOUBLE_EQ(pmu.total.flops, 3 * 100.0 + 40.0);
  EXPECT_EQ(pmu.total.llc_read_transactions, 3 * 7 + 2);
  EXPECT_EQ(pmu.total.inflight_depth[2], 3 * 3 + 1);
  EXPECT_DOUBLE_EQ(pmu.batch.flops, 100.0);

  // A launch smaller than one batch reuses the full-wave result once.
  sim::KernelPmu small;
  sim::ScaleKernelPmu(&small, full, nullptr, 0);
  EXPECT_DOUBLE_EQ(small.total.flops, 100.0);
  EXPECT_EQ(small.total.llc_read_transactions, 7);
}

TEST(PmuTest, RooflineClassifiesAComputeRichKernel) {
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op = schedule::MakeMatmul("mm", 2048, 2048, 2048);
  sim::CompiledKernel compiled = sim::CompileKernel(op, BigConfig(), spec);
  sim::KernelPmu pmu;
  sim::KernelTiming timing = sim::InterpretKernel(compiled, spec, &pmu);
  ASSERT_TRUE(timing.feasible);

  perfmodel::RooflinePoint point =
      perfmodel::ClassifyRoofline(pmu, timing.cycles, spec);
  EXPECT_FALSE(point.regime.empty());
  EXPECT_GT(point.ai_dram, point.ai_llc);  // reuse grows up the hierarchy
  EXPECT_GT(point.compute_cycles, 0.0);
  EXPECT_GT(point.attained_flops_per_cycle, 0.0);
  EXPECT_LE(point.roof_flops_per_cycle, point.peak_flops_per_cycle);
  EXPECT_GT(point.efficiency, 0.0);
  // Attained throughput can never beat the measured-demand ceiling by
  // more than launch-overhead slack.
  EXPECT_LT(point.efficiency, 1.5);
}

TEST(PmuTest, CalibrationAuditsEveryTerm) {
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op = workloads::FindOp("MM_BERT_QKV");
  schedule::ScheduleConfig config = BigConfig();
  perfmodel::CalibrationResult result =
      perfmodel::CalibrateConfig(op, config, spec);
  ASSERT_TRUE(result.feasible);
  ASSERT_FALSE(result.terms.empty());
  std::vector<std::string> names;
  for (const perfmodel::TermError& term : result.terms) {
    names.push_back(term.name);
    EXPECT_TRUE(std::isfinite(term.rel_error)) << term.name;
    EXPECT_GE(term.rel_error, 0.0) << term.name;
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "cycles"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "t_compute"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "t_smem_load"), names.end());
  EXPECT_GT(result.measured_cycles, 0.0);
  EXPECT_GT(result.predicted_cycles, 0.0);
  EXPECT_FALSE(result.bottleneck_limiter.empty());
  EXPECT_FALSE(result.profile_verdict.empty());
  // The verdict cross-check must at least be self-consistent with the
  // roofline helper.
  EXPECT_EQ(result.roofline_agrees,
            perfmodel::RooflineAgreesWithLimiter(result.roofline,
                                                 result.bottleneck_limiter));
}

TEST(PmuTest, CollectionDoesNotPerturbTiming) {
  target::GpuSpec spec = target::AmpereSpec();
  sim::ReplayArena arena;
  for (const auto& [op, config] : ProbeConfigs()) {
    sim::SimProgram program = sim::CompileSimProgram(op, config, spec);
    if (!program.feasible) continue;
    sim::KernelPmu pmu;
    sim::KernelTiming with = sim::ReplaySimProgram(program, &arena, &pmu);
    sim::KernelTiming without = sim::ReplaySimProgram(program, &arena);
    EXPECT_TRUE(BitEqual(with.cycles, without.cycles));
    EXPECT_TRUE(BitEqual(with.batch_cycles, without.batch_cycles));
  }
}

}  // namespace
}  // namespace alcop
