// Tests of the timing-simulation stack: trace building, the discrete-event
// SM simulator, occupancy, traffic analysis, and the qualitative
// performance properties the paper's claims rest on.
#include <gtest/gtest.h>

#include "pipeline/detect.h"
#include "pipeline/transform.h"
#include "schedule/lower.h"
#include "sim/desim.h"
#include "sim/launch.h"
#include "sim/trace.h"
#include "support/check.h"
#include "target/gpu_spec.h"
#include "target/occupancy.h"

namespace alcop {
namespace {

using schedule::GemmOp;
using schedule::MakeMatmul;
using schedule::ScheduleConfig;

ScheduleConfig BigConfig(int smem_stages, int reg_stages) {
  ScheduleConfig config;
  config.tile = {.tb_m = 128, .tb_n = 128, .tb_k = 32,
                 .warp_m = 64, .warp_n = 64, .warp_k = 16};
  config.smem_stages = smem_stages;
  config.reg_stages = reg_stages;
  return config;
}

// ---- Occupancy ----

TEST(OccupancyTest, SharedMemoryLimits) {
  target::GpuSpec spec = target::AmpereSpec();
  target::ThreadblockResources res;
  res.smem_bytes = 48 * 1024;
  res.reg_bytes = 16 * 1024;
  res.warps = 4;
  target::Occupancy occ = target::ComputeOccupancy(spec, res);
  EXPECT_EQ(occ.threadblocks_per_sm, 3);  // 164KB / 48KB
  EXPECT_EQ(occ.limiter, target::Occupancy::Limiter::kSharedMemory);
}

TEST(OccupancyTest, DoesNotFit) {
  target::GpuSpec spec = target::AmpereSpec();
  target::ThreadblockResources res;
  res.smem_bytes = 200 * 1024;  // exceeds the SM
  res.warps = 4;
  target::Occupancy occ = target::ComputeOccupancy(spec, res);
  EXPECT_EQ(occ.threadblocks_per_sm, 0);
}

TEST(OccupancyTest, WarpSlotLimit) {
  target::GpuSpec spec = target::AmpereSpec();
  target::ThreadblockResources res;
  res.smem_bytes = 1024;
  res.reg_bytes = 1024;
  res.warps = 16;
  target::Occupancy occ = target::ComputeOccupancy(spec, res);
  EXPECT_EQ(occ.threadblocks_per_sm, 4);  // 64 warp slots / 16
  EXPECT_EQ(occ.limiter, target::Occupancy::Limiter::kWarpSlots);
}

TEST(OccupancyTest, BatchCount) {
  target::GpuSpec spec = target::AmpereSpec();
  target::ThreadblockResources res;
  res.warps = 4;
  res.smem_bytes = 64 * 1024;  // 2 per SM
  target::Occupancy occ = target::ComputeOccupancy(spec, res);
  ASSERT_EQ(occ.threadblocks_per_sm, 2);
  EXPECT_EQ(target::NumThreadblockBatches(spec, occ, 216), 1);
  EXPECT_EQ(target::NumThreadblockBatches(spec, occ, 217), 2);
}

// ---- Pipeline stage expansion raises shared-memory footprint ----

TEST(ResourcesTest, StageCountsInflateFootprints) {
  GemmOp op = MakeMatmul("mm", 2048, 2048, 2048);
  target::ThreadblockResources one = schedule::ComputeResources(op, BigConfig(1, 1));
  target::ThreadblockResources four =
      schedule::ComputeResources(op, BigConfig(4, 2));
  EXPECT_EQ(four.smem_bytes, 4 * one.smem_bytes);
  EXPECT_GT(four.reg_bytes, one.reg_bytes);
}

// ---- Trace building ----

TEST(TraceTest, EventAccounting) {
  target::GpuSpec spec = target::AmpereSpec();
  GemmOp op = MakeMatmul("mm", 256, 256, 256);
  sim::CompiledKernel compiled =
      sim::CompileKernel(op, BigConfig(3, 2), spec);
  sim::ThreadblockTrace trace =
      sim::BuildTrace(compiled.transformed.stmt, compiled.kernel.num_warps);

  ASSERT_EQ(trace.num_warps, 4);
  ASSERT_EQ(trace.warps.size(), 4u);
  // All warps run the same program: identical event counts.
  for (const sim::WarpTrace& warp : trace.warps) {
    EXPECT_EQ(warp.events.size(), trace.warps[0].events.size());
  }

  // ko extent = 256/32 = 8; smem async copies: (stages-1=2 prologue + 8 in
  // loop) x 2 tensors; reg copies: ki=2 per ko x 2 tensors (+ guarded
  // prologue at ko==0) -- count total async copies per warp.
  int64_t async_copies = 0, mmas = 0, barriers = 0;
  for (const sim::TraceEvent& e : trace.warps[0].events) {
    async_copies += e.kind == sim::EventKind::kCopyAsync;
    mmas += e.kind == sim::EventKind::kMma;
    barriers += e.kind == sim::EventKind::kBarrier;
  }
  // smem: (2 + 8) x 2 = 20; reg: (1 prologue + 8*2 loop) x 2 = 34.
  EXPECT_EQ(async_copies, 54);
  // One MMA per ki iteration: 8 ko x 2 ki = 16.
  EXPECT_EQ(mmas, 16);
  // Pipeline primitives subsumed all barriers.
  EXPECT_EQ(barriers, 0);
}

TEST(TraceTest, CooperativeCopiesSplitBytesAcrossWarps) {
  target::GpuSpec spec = target::AmpereSpec();
  GemmOp op = MakeMatmul("mm", 256, 256, 256);
  sim::CompiledKernel compiled = sim::CompileKernel(op, BigConfig(1, 1), spec);
  sim::ThreadblockTrace trace =
      sim::BuildTrace(compiled.transformed.stmt, compiled.kernel.num_warps);
  // The A tile is 128x32 fp16 = 8KB, split across 4 warps = 2KB each.
  for (const sim::TraceEvent& e : trace.warps[0].events) {
    if (e.kind == sim::EventKind::kCopySync &&
        e.src_scope == ir::MemScope::kGlobal) {
      EXPECT_EQ(e.bytes, 128 * 32 * 2 / 4);
      return;
    }
  }
  FAIL() << "no synchronous global->shared copy found in baseline trace";
}

// ---- End-to-end timing properties ----

TEST(SimTest, PipeliningImprovesLargeTiledGemm) {
  target::GpuSpec spec = target::AmpereSpec();
  GemmOp op = MakeMatmul("mm", 2048, 2048, 2048);
  double base = sim::CompileAndSimulate(op, BigConfig(1, 1), spec).cycles;
  double staged = sim::CompileAndSimulate(op, BigConfig(4, 1), spec).cycles;
  double multi = sim::CompileAndSimulate(op, BigConfig(4, 2), spec).cycles;
  EXPECT_LT(staged, base);
  EXPECT_LE(multi, staged * 1.02);  // multi-level at least comparable
  EXPECT_LT(multi, base);
}

TEST(SimTest, DeeperPipelineHelpsUntilOccupancyBites) {
  // Monotone gains from 1->2->3 stages on a latency-bound problem; at some
  // depth the shared-memory cost reduces occupancy and gains flatten.
  target::GpuSpec spec = target::AmpereSpec();
  GemmOp op = MakeMatmul("mm", 1024, 64, 2048);
  ScheduleConfig config;
  config.tile = {.tb_m = 128, .tb_n = 64, .tb_k = 32,
                 .warp_m = 32, .warp_n = 32, .warp_k = 16};
  double prev = sim::CompileAndSimulate(op, config, spec).cycles;
  config.smem_stages = 2;
  double two = sim::CompileAndSimulate(op, config, spec).cycles;
  config.smem_stages = 3;
  double three = sim::CompileAndSimulate(op, config, spec).cycles;
  EXPECT_LT(two, prev);
  EXPECT_LT(three, two);
}

TEST(SimTest, BlockingCopiesNeutralizeDoubleBuffering) {
  // TVM-DB: double buffering without cp.async brings little gain (paper
  // Fig. 10's TVM DB bar).
  target::GpuSpec spec = target::AmpereSpec();
  GemmOp op = MakeMatmul("mm", 2048, 2048, 2048);
  ScheduleConfig db = BigConfig(2, 1);
  db.async_copies = false;
  double base = sim::CompileAndSimulate(op, BigConfig(1, 1), spec).cycles;
  double blocking_db = sim::CompileAndSimulate(op, db, spec).cycles;
  double async_db = sim::CompileAndSimulate(op, BigConfig(2, 1), spec).cycles;
  EXPECT_LT(async_db, blocking_db);
  // DB without async hardware moves little in either direction (it can
  // even lose slightly: doubled footprint costs occupancy).
  EXPECT_GT(blocking_db, base * 0.8);
  EXPECT_LT(blocking_db, base * 1.25);
}

TEST(SimTest, SwizzlingMatters) {
  target::GpuSpec spec = target::AmpereSpec();
  GemmOp op = MakeMatmul("mm", 1024, 1024, 1024);
  ScheduleConfig with = BigConfig(3, 2);
  ScheduleConfig without = with;
  without.swizzle = false;
  double swizzled = sim::CompileAndSimulate(op, with, spec).cycles;
  double conflicted = sim::CompileAndSimulate(op, without, spec).cycles;
  EXPECT_LT(swizzled, conflicted);
}

TEST(SimTest, InnerFusionBeatsRecursivePipeline) {
  // Fig. 3d vs 3c: the holistic pipeline avoids per-iteration drain.
  target::GpuSpec spec = target::AmpereSpec();
  GemmOp op = MakeMatmul("mm", 1024, 64, 2048);
  ScheduleConfig fused;
  fused.tile = {.tb_m = 128, .tb_n = 64, .tb_k = 32,
                .warp_m = 32, .warp_n = 32, .warp_k = 16};
  fused.smem_stages = 4;
  fused.reg_stages = 2;
  ScheduleConfig recursive = fused;
  recursive.inner_fusion = false;
  double t_fused = sim::CompileAndSimulate(op, fused, spec).cycles;
  double t_recursive = sim::CompileAndSimulate(op, recursive, spec).cycles;
  EXPECT_LE(t_fused, t_recursive);
}

TEST(SimTest, InfeasibleConfigReported) {
  target::GpuSpec spec = target::AmpereSpec();
  GemmOp op = MakeMatmul("mm", 2048, 2048, 2048);
  ScheduleConfig config = BigConfig(8, 2);
  config.tile.tb_m = 256;
  config.tile.tb_n = 256;  // 8-stage 256x256 tiles blow shared memory
  sim::KernelTiming timing = sim::CompileAndSimulate(op, config, spec);
  EXPECT_FALSE(timing.feasible);
  EXPECT_NE(timing.reason.find("not fit"), std::string::npos) << timing.reason;
}

TEST(SimTest, InvalidScheduleReported) {
  target::GpuSpec spec = target::AmpereSpec();
  GemmOp op = MakeMatmul("mm", 100, 100, 100);  // nothing divides 100
  sim::KernelTiming timing = sim::CompileAndSimulate(op, BigConfig(2, 1), spec);
  EXPECT_FALSE(timing.feasible);
  EXPECT_NE(timing.reason.find("invalid schedule"), std::string::npos);
}

TEST(SimTest, DeterministicAcrossRuns) {
  target::GpuSpec spec = target::AmpereSpec();
  GemmOp op = MakeMatmul("mm", 512, 512, 512);
  double a = sim::CompileAndSimulate(op, BigConfig(3, 2), spec).cycles;
  double b = sim::CompileAndSimulate(op, BigConfig(3, 2), spec).cycles;
  EXPECT_EQ(a, b);
}

TEST(SimTest, ThroughputBelowPeak) {
  target::GpuSpec spec = target::AmpereSpec();
  GemmOp op = MakeMatmul("mm", 4096, 4096, 4096);
  sim::KernelTiming timing = sim::CompileAndSimulate(op, BigConfig(4, 2), spec);
  ASSERT_TRUE(timing.feasible);
  double peak_tflops =
      spec.tc_flops_per_sm_per_cycle * spec.num_sms * spec.clock_ghz / 1e3;
  EXPECT_LT(timing.tflops, peak_tflops);
  EXPECT_GT(timing.tflops, 0.3 * peak_tflops);
}

// ---- Traffic analysis ----

TEST(TrafficTest, ReuseReducesDramFractions) {
  target::GpuSpec spec = target::AmpereSpec();
  GemmOp op = MakeMatmul("mm", 2048, 2048, 2048);
  sim::TrafficAnalysis traffic =
      sim::AnalyzeTraffic(op, BigConfig(3, 2), spec, 2);
  EXPECT_LT(traffic.a_dram_fraction, 0.5);
  EXPECT_LT(traffic.b_dram_fraction, 0.5);
  EXPECT_GT(traffic.a_dram_fraction, 0.0);
}

TEST(TrafficTest, TinyGridHasNoReuse) {
  target::GpuSpec spec = target::AmpereSpec();
  GemmOp op = MakeMatmul("mm", 128, 128, 4096);  // a single threadblock
  sim::TrafficAnalysis traffic =
      sim::AnalyzeTraffic(op, BigConfig(2, 1), spec, 2);
  EXPECT_DOUBLE_EQ(traffic.a_dram_fraction, 1.0);
  EXPECT_DOUBLE_EQ(traffic.b_dram_fraction, 1.0);
}

TEST(TrafficTest, RasterizationBalancesReuse) {
  // CUTLASS-style CTA swizzling trades A-reuse for B-reuse and shrinks the
  // combined working set on square grids.
  target::GpuSpec spec = target::AmpereSpec();
  GemmOp op = MakeMatmul("mm", 8192, 8192, 4096);
  ScheduleConfig row_major = BigConfig(3, 2);
  ScheduleConfig swizzled = row_major;
  swizzled.raster_block = 8;
  sim::TrafficAnalysis plain = sim::AnalyzeTraffic(op, row_major, spec, 2);
  sim::TrafficAnalysis raster = sim::AnalyzeTraffic(op, swizzled, spec, 2);
  // The balanced window shrinks the working set enough to fit the LLC, so
  // both tensors' DRAM fractions improve despite A's raw reuse dropping.
  EXPECT_LT(raster.working_set_bytes, plain.working_set_bytes);
  EXPECT_LT(raster.b_dram_fraction, plain.b_dram_fraction);
  EXPECT_LT(raster.a_dram_fraction, plain.a_dram_fraction);
}

TEST(TrafficTest, WorkingSetBeyondLlcDegradesHits) {
  target::GpuSpec spec = target::AmpereSpec();
  spec.llc_bytes = 1 * 1024 * 1024;  // tiny LLC
  GemmOp op = MakeMatmul("mm", 4096, 4096, 4096);
  sim::TrafficAnalysis small_cache =
      sim::AnalyzeTraffic(op, BigConfig(3, 2), spec, 2);
  sim::TrafficAnalysis big_cache = sim::AnalyzeTraffic(
      op, BigConfig(3, 2), target::AmpereSpec(), 2);
  EXPECT_GT(small_cache.a_dram_fraction, big_cache.a_dram_fraction);
}

}  // namespace
}  // namespace alcop
