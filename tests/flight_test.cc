// Tests of the flight-recorder/debug-surface stack (src/obs/flight.h,
// src/obs/log.h and the alcopd wiring in serving/server.cc): the request
// ring and metrics time series, the structured logger, per-client
// attribution with its top-K cardinality cap, the /debug HTTP surface,
// watchdog stall detection, and the access-log/flight-recorder agreement
// gate — every completed request must render the same outcome, lane,
// client and microsecond timings in both places.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "serving/client.h"
#include "serving/http.h"
#include "serving/protocol.h"
#include "serving/server.h"
#include "sim/sim_cache.h"
#include "target/gpu_spec.h"
#include "tuner/records.h"

namespace alcop {
namespace {

using serving::JsonValue;
using serving::ParseJson;

// ------------------------------------------------------- flight recorder

obs::RequestRecord MakeRecord(uint64_t id, const std::string& client,
                              const std::string& lane,
                              const std::string& outcome) {
  obs::RequestRecord rec;
  rec.id = id;
  rec.client = client;
  rec.method = "ping";
  rec.lane = lane;
  rec.outcome = outcome;
  rec.transport = "unix";
  rec.arrival_ns = static_cast<int64_t>(id) * 1000;
  rec.queue_us = 1.5;
  rec.service_us = 2.5;
  rec.total_us = 4.0;
  return rec;
}

TEST(FlightRecorderTest, RingWrapsAndSnapshotsMostRecentFirst) {
  obs::FlightRecorder flight(4);
  for (uint64_t id = 1; id <= 10; ++id) {
    flight.Record(MakeRecord(id, "c" + std::to_string(id % 2), "fast", "ok"));
  }
  EXPECT_EQ(flight.total_recorded(), 10u);
  EXPECT_EQ(flight.depth(), 4u);
  std::vector<obs::RequestRecord> all = flight.Snapshot(100);
  ASSERT_EQ(all.size(), 4u);  // ring keeps the last `depth` only
  EXPECT_EQ(all[0].id, 10u);  // most recent first
  EXPECT_EQ(all[1].id, 9u);
  EXPECT_EQ(all[3].id, 7u);
  // n caps the answer below the retained count.
  EXPECT_EQ(flight.Snapshot(2).size(), 2u);
  flight.Clear();
  EXPECT_EQ(flight.total_recorded(), 0u);
  EXPECT_TRUE(flight.Snapshot(10).empty());
}

TEST(FlightRecorderTest, FiltersMatchClientLaneAndOutcome) {
  obs::FlightRecorder flight(16);
  flight.Record(MakeRecord(1, "alice", "fast", "ok"));
  flight.Record(MakeRecord(2, "bob", "slow", "ok"));
  flight.Record(MakeRecord(3, "alice", "slow", "error"));
  flight.Record(MakeRecord(4, "bob", "fast", "ok"));

  obs::FlightRecorder::Filter by_client;
  by_client.client = "alice";
  std::vector<obs::RequestRecord> alice = flight.Snapshot(10, by_client);
  ASSERT_EQ(alice.size(), 2u);
  EXPECT_EQ(alice[0].id, 3u);
  EXPECT_EQ(alice[1].id, 1u);

  obs::FlightRecorder::Filter by_lane;
  by_lane.lane = "slow";
  EXPECT_EQ(flight.Snapshot(10, by_lane).size(), 2u);

  obs::FlightRecorder::Filter combined;
  combined.client = "bob";
  combined.lane = "fast";
  combined.outcome = "ok";
  std::vector<obs::RequestRecord> both = flight.Snapshot(10, combined);
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0].id, 4u);

  obs::FlightRecorder::Filter nobody;
  nobody.client = "eve";
  EXPECT_TRUE(flight.Snapshot(10, nobody).empty());
}

TEST(FlightRecorderTest, RecordJsonRoundTripsThroughParser) {
  obs::RequestRecord rec = MakeRecord(42, "uid:1000", "slow", "error");
  rec.op_key = "mm_512x512x512";
  rec.batch = 7;
  rec.queue_us = 1234.5678901234567;
  std::string json = obs::RequestRecordJson(rec);
  std::optional<JsonValue> parsed = ParseJson(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  EXPECT_EQ(parsed->Find("id")->NumberOr(0), 42.0);
  EXPECT_EQ(parsed->Find("client")->StringOr(""), "uid:1000");
  EXPECT_EQ(parsed->Find("op_key")->StringOr(""), "mm_512x512x512");
  EXPECT_EQ(parsed->Find("lane")->StringOr(""), "slow");
  EXPECT_EQ(parsed->Find("outcome")->StringOr(""), "error");
  EXPECT_EQ(parsed->Find("transport")->StringOr(""), "unix");
  EXPECT_EQ(parsed->Find("batch")->NumberOr(0), 7.0);
  EXPECT_EQ(parsed->Find("queue_us")->NumberOr(0), 1234.5678901234567);
}

// ---------------------------------------------------- metrics time series

obs::MetricSnapshot CounterSnap(const std::string& name, double value) {
  obs::MetricSnapshot snap;
  snap.kind = obs::MetricSnapshot::Kind::kCounter;
  snap.name = name;
  snap.value = value;
  return snap;
}

TEST(MetricsTimeSeriesTest, FlattenExpandsHistogramsAndSorts) {
  obs::MetricSnapshot hist;
  hist.kind = obs::MetricSnapshot::Kind::kHistogram;
  hist.name = "t.lat.us";
  hist.histogram.count = 3;
  hist.histogram.sum = 12.5;
  std::vector<std::pair<std::string, double>> flat =
      obs::FlattenSnapshot({CounterSnap("t.z", 9), hist, CounterSnap("t.a", 1)});
  ASSERT_EQ(flat.size(), 4u);
  // Sorted by name; the histogram expands to .count/.sum.
  EXPECT_EQ(flat[0].first, "t.a");
  EXPECT_EQ(flat[1].first, "t.lat.us.count");
  EXPECT_EQ(flat[1].second, 3.0);
  EXPECT_EQ(flat[2].first, "t.lat.us.sum");
  EXPECT_EQ(flat[2].second, 12.5);
  EXPECT_EQ(flat[3].first, "t.z");
}

TEST(MetricsTimeSeriesTest, RingWrapsAndSeriesIsOldestFirst) {
  obs::MetricsTimeSeries series(3);
  for (int64_t t = 1; t <= 5; ++t) {
    series.Sample(t, {CounterSnap("t.req", static_cast<double>(t) * 10)});
  }
  EXPECT_EQ(series.samples(), 3u);  // wrapped to the last 3
  std::vector<obs::MetricsTimeSeries::Point> points = series.Series("t.req");
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].t_ns, 3);  // oldest retained first
  EXPECT_EQ(points[0].value, 30.0);
  EXPECT_EQ(points[2].t_ns, 5);
  EXPECT_EQ(points[2].value, 50.0);
  EXPECT_TRUE(series.Series("t.missing").empty());
  std::vector<std::string> names = series.Names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "t.req");
  series.Clear();
  EXPECT_EQ(series.samples(), 0u);
}

// ------------------------------------------------------ structured logging

TEST(StructuredLogTest, ParsesLevelNames) {
  using obs::LogLevel;
  using obs::ParseLogLevel;
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO", LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warn", LogLevel::kInfo), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning", LogLevel::kInfo), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error", LogLevel::kInfo), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off", LogLevel::kInfo), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("none", LogLevel::kInfo), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("bogus", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_STREQ(obs::LogLevelName(LogLevel::kWarn), "warn");
}

TEST(StructuredLogTest, LevelGatesRingRetainsAndLinesParse) {
  obs::StructuredLog& log = obs::StructuredLog::Global();
  obs::LogLevel saved = log.level();
  log.Clear();
  log.SetLevel(obs::LogLevel::kWarn);

  obs::Log(obs::LogLevel::kInfo, "test", "suppressed");
  EXPECT_EQ(log.total_lines(), 0u);

  obs::Log(obs::LogLevel::kWarn, "test", "kept \"quoted\"",
           obs::LogFields()
               .Str("who", "a\\b")
               .Num("age_us", 12.5)
               .Int("depth", -3)
               .Bool("stalled", true)
               .Raw("tail", "[1,2]"));
  EXPECT_EQ(log.total_lines(), 1u);
  std::vector<std::string> recent = log.Recent(10);
  ASSERT_EQ(recent.size(), 1u);
  std::optional<JsonValue> line = ParseJson(recent[0]);
  ASSERT_TRUE(line.has_value()) << recent[0];
  EXPECT_EQ(line->Find("level")->StringOr(""), "warn");
  EXPECT_EQ(line->Find("component")->StringOr(""), "test");
  EXPECT_EQ(line->Find("msg")->StringOr(""), "kept \"quoted\"");
  EXPECT_EQ(line->Find("who")->StringOr(""), "a\\b");
  EXPECT_EQ(line->Find("age_us")->NumberOr(0), 12.5);
  EXPECT_EQ(line->Find("depth")->NumberOr(0), -3.0);
  EXPECT_TRUE(line->Find("stalled")->BoolOr(false));
  ASSERT_EQ(line->Find("tail")->array.size(), 2u);
  EXPECT_GT(line->Find("ts_ns")->NumberOr(0), 0.0);

  // Ring wrap: only the newest lines are retained, the rest counted.
  log.Clear();
  log.SetRingDepth(2);
  for (int i = 0; i < 5; ++i) {
    obs::Log(obs::LogLevel::kError, "test", "line" + std::to_string(i));
  }
  EXPECT_EQ(log.total_lines(), 5u);
  EXPECT_EQ(log.dropped_lines(), 3u);
  recent = log.Recent(10);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_NE(recent[0].find("line3"), std::string::npos);  // oldest first
  EXPECT_NE(recent[1].find("line4"), std::string::npos);

  log.SetRingDepth(1024);
  log.SetLevel(saved);
  log.Clear();
}

// ---------------------------------------------------------------------------
// End-to-end daemon tests ("Server" in the fixture name keeps these in
// the TSan CI selection).
// ---------------------------------------------------------------------------

// Counter value for a fully-labeled name, without creating the series.
double RegistryCounterValue(const std::string& name, bool* found = nullptr) {
  for (const obs::MetricSnapshot& snap : obs::Registry::Global().Snapshot()) {
    if (snap.name == name) {
      if (found != nullptr) *found = true;
      return snap.value;
    }
  }
  if (found != nullptr) *found = false;
  return 0.0;
}

class FlightServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::ResetSimCache();
    tuner::TuningStore::Global().Clear();
    socket_path_ =
        "/tmp/alcopd_flight_" + std::to_string(::getpid()) + ".sock";
    access_log_path_ =
        "/tmp/alcopd_flight_" + std::to_string(::getpid()) + ".access.jsonl";
    std::remove(access_log_path_.c_str());
    options_.socket_path = socket_path_;
    options_.spec = target::AmpereSpec();
    options_.default_trials = 4;
    options_.space.tb_m = {64, 128};
    options_.space.tb_n = {64};
    options_.space.tb_k = {32};
    options_.cache_path = "";
    options_.persist_on_shutdown = false;
    options_.flight_depth = 256;
    options_.snapshot_interval_ms = 10;
    options_.snapshot_depth = 64;
    options_.watchdog_stall_ms = 0;  // individual tests opt in
  }

  void TearDown() override {
    std::remove(socket_path_.c_str());
    std::remove(access_log_path_.c_str());
    sim::ResetSimCache();
    tuner::TuningStore::Global().Clear();
  }

  static std::string Ping(int id, const std::string& client) {
    return "{\"id\":" + std::to_string(id) + ",\"method\":\"ping\"" +
           (client.empty() ? std::string()
                           : ",\"client\":\"" + client + "\"") +
           "}";
  }

  std::string socket_path_;
  std::string access_log_path_;
  serving::ServerOptions options_;
};

TEST_F(FlightServerTest, DebugEndpointsServeTheirSchemas) {
  options_.http_port = 0;
  serving::Server server(options_);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  int port = server.http_port();
  ASSERT_GT(port, 0);

  serving::Client client;
  ASSERT_TRUE(client.Connect(socket_path_));
  ASSERT_TRUE(client.Call(Ping(1, "dbg_zeta")).has_value());
  ASSERT_TRUE(client.Call(Ping(2, "dbg_eta")).has_value());

  // /debug/requests: retained records, most recent first.
  std::optional<serving::HttpResponse> requests =
      serving::HttpCall(port, "GET", "/debug/requests?n=10");
  ASSERT_TRUE(requests.has_value());
  EXPECT_EQ(requests->status, 200);
  std::optional<JsonValue> doc = ParseJson(requests->body);
  ASSERT_TRUE(doc.has_value()) << requests->body;
  EXPECT_GE(doc->Find("total_recorded")->NumberOr(0), 2.0);
  const JsonValue* list = doc->Find("requests");
  ASSERT_NE(list, nullptr);
  ASSERT_GE(list->array.size(), 2u);
  const JsonValue& newest = list->array[0];
  EXPECT_EQ(newest.Find("client")->StringOr(""), "dbg_eta");
  EXPECT_EQ(newest.Find("lane")->StringOr(""), "fast");
  EXPECT_EQ(newest.Find("outcome")->StringOr(""), "ok");
  EXPECT_EQ(newest.Find("transport")->StringOr(""), "unix");

  // ?client= filter narrows to one identity.
  std::optional<serving::HttpResponse> filtered =
      serving::HttpCall(port, "GET", "/debug/requests?client=dbg_zeta");
  ASSERT_TRUE(filtered.has_value());
  doc = ParseJson(filtered->body);
  ASSERT_TRUE(doc.has_value());
  for (const JsonValue& rec : doc->Find("requests")->array) {
    EXPECT_EQ(rec.Find("client")->StringOr(""), "dbg_zeta");
  }

  // /debug/timeseries: names listing, then points for one metric. The
  // 10ms snapshot interval needs a beat to accumulate samples.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  std::optional<serving::HttpResponse> names =
      serving::HttpCall(port, "GET", "/debug/timeseries");
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(names->status, 200);
  doc = ParseJson(names->body);
  ASSERT_TRUE(doc.has_value()) << names->body;
  EXPECT_GE(doc->Find("samples")->NumberOr(0), 1.0);
  bool saw_requests_metric = false;
  for (const JsonValue& name : doc->Find("metrics")->array) {
    if (name.StringOr("") == "serving.requests") saw_requests_metric = true;
  }
  EXPECT_TRUE(saw_requests_metric);
  std::optional<serving::HttpResponse> points = serving::HttpCall(
      port, "GET", "/debug/timeseries?metric=serving.requests");
  ASSERT_TRUE(points.has_value());
  doc = ParseJson(points->body);
  ASSERT_TRUE(doc.has_value()) << points->body;
  EXPECT_EQ(doc->Find("metric")->StringOr(""), "serving.requests");
  const JsonValue* series = doc->Find("points");
  ASSERT_NE(series, nullptr);
  ASSERT_GE(series->array.size(), 1u);
  EXPECT_GT(series->array[0].Find("t_ns")->NumberOr(0), 0.0);
  EXPECT_GE(series->array.back().Find("value")->NumberOr(-1),
            series->array[0].Find("value")->NumberOr(-1));

  // /debug/log: the daemon's own "started" line is retained.
  std::optional<serving::HttpResponse> log =
      serving::HttpCall(port, "GET", "/debug/log?n=50");
  ASSERT_TRUE(log.has_value());
  EXPECT_EQ(log->status, 200);
  doc = ParseJson(log->body);
  ASSERT_TRUE(doc.has_value()) << log->body;
  bool saw_started = false;
  for (const JsonValue& line : doc->Find("lines")->array) {
    if (line.Find("msg") != nullptr &&
        line.Find("msg")->StringOr("") == "started") {
      saw_started = true;
    }
  }
  EXPECT_TRUE(saw_started);

  // /debug/trace: Chrome JSON with the host process named.
  std::optional<serving::HttpResponse> trace =
      serving::HttpCall(port, "GET", "/debug/trace");
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->status, 200);
  EXPECT_NE(trace->body.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace->body.find("alcop host"), std::string::npos);

  // Wrong verb and unknown view get transport errors.
  std::optional<serving::HttpResponse> wrong_verb =
      serving::HttpCall(port, "POST", "/debug/requests", "{}");
  ASSERT_TRUE(wrong_verb.has_value());
  EXPECT_EQ(wrong_verb->status, 405);
  std::optional<serving::HttpResponse> unknown =
      serving::HttpCall(port, "GET", "/debug/nope");
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(unknown->status, 404);

  // The socket-side mirror answers the same views.
  std::optional<JsonValue> socket_debug = client.Call(
      "{\"id\":9,\"method\":\"debug\",\"what\":\"requests\",\"n\":3}");
  ASSERT_TRUE(socket_debug.has_value());
  EXPECT_TRUE(socket_debug->Find("ok")->BoolOr(false));
  EXPECT_EQ(socket_debug->Find("what")->StringOr(""), "requests");
  ASSERT_NE(socket_debug->Find("result"), nullptr);
  EXPECT_NE(socket_debug->Find("result")->Find("requests"), nullptr);
  std::optional<JsonValue> socket_bad = client.Call(
      "{\"id\":10,\"method\":\"debug\",\"what\":\"nope\"}");
  ASSERT_TRUE(socket_bad.has_value());
  EXPECT_FALSE(socket_bad->Find("ok")->BoolOr(true));

  server.Stop();
}

TEST_F(FlightServerTest, AttributionPrefersHeaderThenBodyThenPeer) {
  options_.http_port = 0;
  serving::Server server(options_);
  ASSERT_TRUE(server.Start());
  int port = server.http_port();

  double header_before = RegistryCounterValue(
      "serving.client.requests|client=attr_hdr");
  double body_before = RegistryCounterValue(
      "serving.client.requests|client=attr_body");
  std::string uid_series =
      "serving.client.requests|client=uid:" + std::to_string(::getuid());
  double uid_before = RegistryCounterValue(uid_series);

  // HTTP with X-Alcop-Client: the header wins over the body field.
  std::optional<serving::HttpResponse> with_header = serving::HttpCall(
      port, "POST", "/v1/ping", "{\"id\":1,\"client\":\"attr_body\"}",
      {{"X-Alcop-Client", "attr_hdr"}});
  ASSERT_TRUE(with_header.has_value());
  EXPECT_EQ(with_header->status, 200);

  // Unix socket with a body field: the self-declared identity is used.
  serving::Client client;
  ASSERT_TRUE(client.Connect(socket_path_));
  ASSERT_TRUE(client.Call(Ping(2, "attr_body")).has_value());

  // Unix socket with no declaration: SO_PEERCRED attributes the uid.
  ASSERT_TRUE(client.Call(Ping(3, "")).has_value());

  EXPECT_EQ(RegistryCounterValue("serving.client.requests|client=attr_hdr"),
            header_before + 1);
  EXPECT_EQ(RegistryCounterValue("serving.client.requests|client=attr_body"),
            body_before + 1);
  EXPECT_EQ(RegistryCounterValue(uid_series), uid_before + 1);

  // Identities are sanitized before they become label values.
  ASSERT_TRUE(client.Call(Ping(4, "we ird/guy")).has_value());
  bool found = false;
  RegistryCounterValue("serving.client.requests|client=we_ird_guy", &found);
  EXPECT_TRUE(found);

  // The flight recorder saw the same attribution.
  std::optional<serving::HttpResponse> requests =
      serving::HttpCall(port, "GET", "/debug/requests?client=attr_hdr");
  ASSERT_TRUE(requests.has_value());
  std::optional<JsonValue> doc = ParseJson(requests->body);
  ASSERT_TRUE(doc.has_value());
  ASSERT_GE(doc->Find("requests")->array.size(), 1u);
  EXPECT_EQ(doc->Find("requests")->array[0].Find("transport")->StringOr(""),
            "http");

  server.Stop();
}

TEST_F(FlightServerTest, ClientCardinalityCapCollapsesToOther) {
  options_.max_clients = 2;
  serving::Server server(options_);
  ASSERT_TRUE(server.Start());

  double other_before =
      RegistryCounterValue("serving.client.requests|client=other");

  serving::Client client;
  ASSERT_TRUE(client.Connect(socket_path_));
  ASSERT_TRUE(client.Call(Ping(1, "capA")).has_value());
  ASSERT_TRUE(client.Call(Ping(2, "capB")).has_value());
  ASSERT_TRUE(client.Call(Ping(3, "capC")).has_value());
  ASSERT_TRUE(client.Call(Ping(4, "capC")).has_value());
  ASSERT_TRUE(client.Call(Ping(5, "capD")).has_value());
  ASSERT_TRUE(client.Call(Ping(6, "capA")).has_value());

  // The first two identities own their series...
  bool found_a = false;
  bool found_b = false;
  EXPECT_EQ(
      RegistryCounterValue("serving.client.requests|client=capA", &found_a),
      2.0);
  EXPECT_EQ(
      RegistryCounterValue("serving.client.requests|client=capB", &found_b),
      1.0);
  EXPECT_TRUE(found_a);
  EXPECT_TRUE(found_b);
  // ...while overflow identities share "other" and never mint a series,
  // even on repeat traffic.
  bool found_c = false;
  bool found_d = false;
  RegistryCounterValue("serving.client.requests|client=capC", &found_c);
  RegistryCounterValue("serving.client.requests|client=capD", &found_d);
  EXPECT_FALSE(found_c);
  EXPECT_FALSE(found_d);
  EXPECT_EQ(RegistryCounterValue("serving.client.requests|client=other"),
            other_before + 3);

  server.Stop();
}

TEST_F(FlightServerTest, WatchdogTripsOnStalledSlowLaneAndDumps) {
  options_.watchdog_stall_ms = 10;
  serving::Server server(options_);
  ASSERT_TRUE(server.Start());

  double stalls_before = RegistryCounterValue("serving.watchdog.stalls");

  // One long tune occupies the single slow worker; a compile queued
  // behind it ages past the 10ms threshold while the tune runs.
  std::thread tuner_thread([&] {
    serving::Client tune_client;
    ASSERT_TRUE(tune_client.Connect(socket_path_));
    std::optional<JsonValue> response = tune_client.Call(
        "{\"id\":1,\"method\":\"tune\",\"m\":512,\"n\":512,\"k\":512,"
        "\"trials\":48}");
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(response->Find("ok")->BoolOr(false));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::thread compile_thread([&] {
    serving::Client compile_client;
    ASSERT_TRUE(compile_client.Connect(socket_path_));
    std::optional<JsonValue> response = compile_client.Call(
        "{\"id\":2,\"method\":\"compile\",\"m\":512,\"n\":512,\"k\":768,"
        "\"config\":{\"tb\":[128,128,32],\"warp\":[64,64,16],\"smem\":2}}");
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(response->Find("ok")->BoolOr(false));
  });
  tuner_thread.join();
  compile_thread.join();

  EXPECT_GT(RegistryCounterValue("serving.watchdog.stalls"), stalls_before);

  // The one-shot dump landed in the structured-log ring with the
  // flight-recorder tail and a flattened metrics snapshot attached.
  bool saw_dump = false;
  for (const std::string& line :
       obs::StructuredLog::Global().Recent(256)) {
    if (line.find("lane stalled") == std::string::npos) continue;
    std::optional<JsonValue> parsed = ParseJson(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    EXPECT_EQ(parsed->Find("level")->StringOr(""), "error");
    EXPECT_GT(parsed->Find("oldest_age_us")->NumberOr(0), 0.0);
    EXPECT_GE(parsed->Find("queue_depth")->NumberOr(0), 1.0);
    EXPECT_NE(parsed->Find("flight_tail"), nullptr);
    EXPECT_NE(parsed->Find("metrics"), nullptr);
    saw_dump = true;
  }
  EXPECT_TRUE(saw_dump);

  server.Stop();
}

TEST_F(FlightServerTest, AccessLogAndFlightAgreeUnderConcurrentClients) {
  options_.access_log_path = access_log_path_;
  options_.http_port = 0;
  serving::Server server(options_);
  ASSERT_TRUE(server.Start());
  int port = server.http_port();

  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      serving::Client client;
      ASSERT_TRUE(client.Connect(socket_path_));
      std::string who = "agree" + std::to_string(c);
      for (int i = 0; i < kPerClient; ++i) {
        if (i == kPerClient - 1) {
          // One slow-lane request per client: a shape unseen elsewhere.
          std::optional<JsonValue> response = client.Call(
              "{\"id\":" + std::to_string(c * 100 + i) +
              ",\"method\":\"compile\",\"client\":\"" + who +
              "\",\"m\":256,\"n\":256,\"k\":" +
              std::to_string(1024 + 128 * c) +
              ",\"config\":{\"tb\":[128,128,32],\"warp\":[64,64,16],"
              "\"smem\":2}}");
          ASSERT_TRUE(response.has_value());
        } else {
          ASSERT_TRUE(client.Call(Ping(c * 100 + i, who)).has_value());
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Snapshot the flight recorder over HTTP, then stop (flushes the log).
  std::optional<serving::HttpResponse> requests =
      serving::HttpCall(port, "GET", "/debug/requests?n=256");
  ASSERT_TRUE(requests.has_value());
  std::optional<JsonValue> doc = ParseJson(requests->body);
  ASSERT_TRUE(doc.has_value());
  server.Stop();

  // Index the access log by server-assigned request id.
  std::ifstream log(access_log_path_);
  ASSERT_TRUE(log.is_open());
  std::map<uint64_t, JsonValue> by_id;
  std::string line;
  size_t access_lines = 0;
  while (std::getline(log, line)) {
    if (line.empty()) continue;
    ++access_lines;
    std::optional<JsonValue> parsed = ParseJson(line);
    ASSERT_TRUE(parsed.has_value()) << line;
    by_id.emplace(
        static_cast<uint64_t>(parsed->Find("id")->NumberOr(0)),
        std::move(*parsed));
  }
  ASSERT_GE(access_lines, static_cast<size_t>(kClients * kPerClient));

  // Every retained flight record must agree with its access-log line on
  // attribution, routing, outcome and the exact microsecond timings
  // (both sides render the same doubles at precision 17).
  const JsonValue* flight_list = doc->Find("requests");
  ASSERT_NE(flight_list, nullptr);
  size_t compared = 0;
  std::set<std::string> flight_clients;
  for (const JsonValue& rec : flight_list->array) {
    uint64_t id = static_cast<uint64_t>(rec.Find("id")->NumberOr(0));
    auto it = by_id.find(id);
    // The /debug/requests call itself completes after its own snapshot,
    // so it may appear in the log but not the snapshot — never the
    // reverse for ids the snapshot holds.
    ASSERT_NE(it, by_id.end()) << "flight id " << id << " not in access log";
    const JsonValue& logged = it->second;
    EXPECT_EQ(rec.Find("client")->StringOr("!"),
              logged.Find("client")->StringOr("?"));
    EXPECT_EQ(rec.Find("method")->StringOr("!"),
              logged.Find("method")->StringOr("?"));
    EXPECT_EQ(rec.Find("lane")->StringOr("!"),
              logged.Find("lane")->StringOr("?"));
    EXPECT_EQ(rec.Find("outcome")->StringOr("!"),
              logged.Find("outcome")->StringOr("?"));
    EXPECT_EQ(rec.Find("batch")->NumberOr(-1),
              logged.Find("batch")->NumberOr(-2));
    EXPECT_EQ(rec.Find("queue_us")->NumberOr(-1),
              logged.Find("queue_us")->NumberOr(-2));
    EXPECT_EQ(rec.Find("service_us")->NumberOr(-1),
              logged.Find("service_us")->NumberOr(-2));
    EXPECT_EQ(rec.Find("total_us")->NumberOr(-1),
              logged.Find("total_us")->NumberOr(-2));
    flight_clients.insert(rec.Find("client")->StringOr(""));
    ++compared;
  }
  EXPECT_GE(compared, static_cast<size_t>(kClients * kPerClient));
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(flight_clients.count("agree" + std::to_string(c)))
        << "missing client agree" << c;
  }
}

}  // namespace
}  // namespace alcop
