// Golden-trace equivalence of the two-phase measurement pipeline: for
// every schedule config of every Fig. 10 operator, the bytecode replay
// (CompileSimProgram + ReplaySimProgram) must reproduce the AST
// interpreter's KernelTiming bit for bit — the property that lets the
// tuner, the cache and the benchmarks swap the interpreter out for the
// compiled path without a tolerance budget. Timelines are compared span
// for span and the traffic report is checked for phase-1 determinism on
// a sampled subset (both are strictly slower to capture than a timing).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "sim/desim.h"
#include "sim/launch.h"
#include "sim/traffic_report.h"
#include "target/gpu_spec.h"
#include "tuner/strategy.h"
#include "workloads/ops.h"

namespace alcop {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Exact comparison, every field. Doubles are compared by bit pattern so a
// reassociated accumulation or a changed operation order fails the test
// even when the values agree to 1e-15.
::testing::AssertionResult SameTiming(const sim::KernelTiming& interp,
                                      const sim::KernelTiming& replay) {
  if (interp.feasible != replay.feasible) {
    return ::testing::AssertionFailure()
           << "feasible " << interp.feasible << " vs " << replay.feasible;
  }
  if (interp.reason != replay.reason) {
    return ::testing::AssertionFailure()
           << "reason '" << interp.reason << "' vs '" << replay.reason << "'";
  }
  if (!BitEqual(interp.cycles, replay.cycles)) {
    return ::testing::AssertionFailure()
           << "cycles " << interp.cycles << " vs " << replay.cycles;
  }
  if (!BitEqual(interp.microseconds, replay.microseconds) ||
      !BitEqual(interp.tflops, replay.tflops) ||
      !BitEqual(interp.batch_cycles, replay.batch_cycles)) {
    return ::testing::AssertionFailure() << "derived metrics differ";
  }
  if (interp.batches != replay.batches ||
      interp.threadblocks_per_sm != replay.threadblocks_per_sm) {
    return ::testing::AssertionFailure() << "launch geometry differs";
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult SameTimeline(const sim::BatchTimeline& interp,
                                        const sim::BatchTimeline& replay) {
  if (interp.threadblocks != replay.threadblocks ||
      interp.num_warps != replay.num_warps) {
    return ::testing::AssertionFailure() << "batch geometry differs";
  }
  if (!BitEqual(interp.timeline.makespan, replay.timeline.makespan)) {
    return ::testing::AssertionFailure()
           << "makespan " << interp.timeline.makespan << " vs "
           << replay.timeline.makespan;
  }
  if (interp.timeline.spans.size() != replay.timeline.spans.size()) {
    return ::testing::AssertionFailure()
           << "span count " << interp.timeline.spans.size() << " vs "
           << replay.timeline.spans.size();
  }
  for (size_t i = 0; i < interp.timeline.spans.size(); ++i) {
    const sim::TimelineSpan& a = interp.timeline.spans[i];
    const sim::TimelineSpan& b = replay.timeline.spans[i];
    if (a.tb != b.tb || a.warp != b.warp || a.kind != b.kind ||
        !BitEqual(a.start, b.start) || !BitEqual(a.end, b.end)) {
      return ::testing::AssertionFailure() << "span " << i << " differs";
    }
  }
  return ::testing::AssertionSuccess();
}

// PMU counter sets are compared as raw bytes: the bit-identity contract
// (sim/pmu.h) says both cores must produce memcmp-equal counters.
::testing::AssertionResult SamePmu(const sim::KernelPmu& interp,
                                   const sim::KernelPmu& replay) {
  if (interp.collected != replay.collected) {
    return ::testing::AssertionFailure()
           << "collected " << interp.collected << " vs " << replay.collected;
  }
  if (std::memcmp(&interp.total, &replay.total, sizeof(sim::PmuCounters)) !=
      0) {
    return ::testing::AssertionFailure() << "total counters differ";
  }
  if (std::memcmp(&interp.batch, &replay.batch, sizeof(sim::PmuCounters)) !=
      0) {
    return ::testing::AssertionFailure() << "batch counters differ";
  }
  if (!BitEqual(interp.achieved_occupancy, replay.achieved_occupancy)) {
    return ::testing::AssertionFailure()
           << "occupancy " << interp.achieved_occupancy << " vs "
           << replay.achieved_occupancy;
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult SameTraffic(const sim::TrafficReport& a,
                                       const sim::TrafficReport& b) {
  if (!BitEqual(a.dram_read_bytes, b.dram_read_bytes) ||
      !BitEqual(a.llc_read_bytes, b.llc_read_bytes) ||
      !BitEqual(a.smem_write_bytes, b.smem_write_bytes) ||
      !BitEqual(a.lds_read_bytes, b.lds_read_bytes) ||
      !BitEqual(a.dram_write_bytes, b.dram_write_bytes) ||
      !BitEqual(a.flops, b.flops)) {
    return ::testing::AssertionFailure() << "traffic bytes differ";
  }
  return ::testing::AssertionSuccess();
}

// The full sweep: every config the tuner would enumerate for every
// Fig. 10 operator, timings compared on all of them (infeasible ones
// included — the replay must agree on the rejection reason too).
TEST(SimReplayGolden, EveryFig10ConfigMatchesInterpreterExactly) {
  const target::GpuSpec spec = target::AmpereSpec();
  sim::ReplayArena arena;

  int configs = 0;
  int feasible = 0;
  int timelines = 0;
  int traffic_samples = 0;
  int failures = 0;

  for (const schedule::GemmOp& op : workloads::BenchmarkOps()) {
    tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
    for (const schedule::ScheduleConfig& config : task.space) {
      ++configs;
      sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);
      sim::KernelPmu interp_pmu;
      sim::KernelTiming interp = sim::InterpretKernel(compiled, spec,
                                                      &interp_pmu);
      sim::SimProgram program = sim::BuildSimProgram(compiled, spec);
      sim::KernelPmu replay_pmu;
      sim::KernelTiming replay =
          sim::ReplaySimProgram(program, &arena, &replay_pmu);

      ::testing::AssertionResult timing_ok = SameTiming(interp, replay);
      if (!timing_ok) {
        if (++failures <= 5) {
          ADD_FAILURE() << op.name << " " << config.ToString() << ": "
                        << timing_ok.message();
        }
        continue;
      }
      ::testing::AssertionResult pmu_ok = SamePmu(interp_pmu, replay_pmu);
      if (!pmu_ok) {
        if (++failures <= 5) {
          ADD_FAILURE() << op.name << " " << config.ToString()
                        << " pmu: " << pmu_ok.message();
        }
        continue;
      }
      if (!interp.feasible) continue;
      ++feasible;

      // Timelines cost an extra instrumented run of both engines; sample.
      if (feasible % 41 == 0) {
        ++timelines;
        sim::BatchTimeline ti = sim::CaptureTimelineInterpreted(compiled, spec);
        sim::BatchTimeline tr = sim::CaptureTimeline(compiled, spec);
        ::testing::AssertionResult timeline_ok = SameTimeline(ti, tr);
        if (!timeline_ok) {
          if (++failures <= 5) {
            ADD_FAILURE() << op.name << " " << config.ToString()
                          << " timeline: " << timeline_ok.message();
          }
        }
      }

      // Phase-1 determinism: the traffic report from an independent
      // recompile must be bit-identical — this is what makes caching the
      // compiled program equivalent to recompiling it per measurement.
      if (feasible % 53 == 0) {
        ++traffic_samples;
        sim::TrafficReport first = sim::AnalyzeKernelTraffic(compiled, spec);
        sim::CompiledKernel again = sim::CompileKernel(op, config, spec);
        sim::TrafficReport second = sim::AnalyzeKernelTraffic(again, spec);
        ::testing::AssertionResult traffic_ok = SameTraffic(first, second);
        if (!traffic_ok) {
          if (++failures <= 5) {
            ADD_FAILURE() << op.name << " " << config.ToString()
                          << " traffic: " << traffic_ok.message();
          }
        }
      }
    }
  }

  EXPECT_EQ(failures, 0);
  // The sweep must actually have exercised the space; these bounds catch a
  // silently shrunken enumeration.
  EXPECT_GT(configs, 10000);
  EXPECT_GT(feasible, 10000);
  EXPECT_GT(timelines, 100);
  EXPECT_GT(traffic_samples, 100);
}

// Warm-arena reuse across wildly different program shapes must not change
// results: replaying A, then B, then A again yields A's timing bit for bit
// (the arena is scratch, not state).
TEST(SimReplayGolden, ArenaReuseAcrossProgramsIsStateless) {
  const target::GpuSpec spec = target::AmpereSpec();
  const std::vector<schedule::GemmOp>& ops = workloads::BenchmarkOps();
  ASSERT_GE(ops.size(), 2u);

  sim::ReplayArena arena;
  std::vector<sim::SimProgram> programs;
  std::vector<sim::KernelTiming> first;
  for (size_t i = 0; i < 4 && i < ops.size(); ++i) {
    tuner::TuningTask task = tuner::MakeSimulatorTask(ops[i], spec);
    for (const schedule::ScheduleConfig& config : task.space) {
      sim::SimProgram program = sim::CompileSimProgram(ops[i], config, spec);
      if (!program.feasible) continue;
      first.push_back(sim::ReplaySimProgram(program, &arena));
      programs.push_back(std::move(program));
      break;
    }
  }
  ASSERT_GE(programs.size(), 2u);

  // Replay in reverse order through the same (now warm) arena.
  for (size_t i = programs.size(); i-- > 0;) {
    sim::KernelTiming again = sim::ReplaySimProgram(programs[i], &arena);
    EXPECT_TRUE(SameTiming(first[i], again)) << "program " << i;
  }
}

}  // namespace
}  // namespace alcop
