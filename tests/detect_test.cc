// Tests of the pipeline buffer detection pass (Sec. II): the three
// legality rules, the transformation-ordering study of Fig. 5, and
// AutoPipeline's stage assignment.
#include <gtest/gtest.h>

#include "pipeline/detect.h"
#include "schedule/schedule.h"
#include "support/check.h"
#include "target/gpu_spec.h"

namespace alcop {
namespace {

using pipeline::AutoPipeline;
using pipeline::DetectPipelineBuffers;
using pipeline::DetectionResult;
using schedule::GemmOp;
using schedule::InlineOrder;
using schedule::MakeMatmul;
using schedule::Schedule;
using schedule::ScheduleConfig;

ScheduleConfig TestConfig() {
  ScheduleConfig config;
  config.tile = {.tb_m = 32, .tb_n = 32, .tb_k = 16,
                 .warp_m = 16, .warp_n = 16, .warp_k = 8};
  config.smem_stages = 3;
  config.reg_stages = 2;
  return config;
}

TEST(DetectTest, CanonicalGemmAllBuffersEligible) {
  Schedule sched(MakeMatmul("mm", 64, 64, 64), TestConfig());
  DetectionResult result = DetectPipelineBuffers(sched, target::AmpereSpec());
  for (const char* name : {"A_shared", "B_shared", "A_reg", "B_reg"}) {
    EXPECT_TRUE(result.IsEligible(name)) << name;
  }
}

TEST(DetectTest, Rule1RefusesComputeProducedBuffer) {
  // Fig. 5 case 1: inlining f before pipelining fuses it into the
  // Global->Shared copy; the buffer is no longer produced by an
  // asynchronous memory copy.
  GemmOp op = MakeMatmul("mm", 64, 64, 64);
  op.a_producer_op = ir::EwiseOp::kScale;
  Schedule sched(op, TestConfig(), InlineOrder::kBeforePipelining);
  DetectionResult result = DetectPipelineBuffers(sched, target::AmpereSpec());
  const pipeline::DetectionEntry* entry = result.Find("A_shared");
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->eligible);
  EXPECT_NE(entry->reason.find("compute op"), std::string::npos)
      << entry->reason;
}

TEST(DetectTest, OrderingPipelineBeforeInlineKeepsEligibility) {
  // Fig. 5 case 2 (ALCOP): pipelining first, f re-routed into the
  // Shared->Register copy. Both the shared buffer (pure async copy) and
  // the register buffer (scoreboarded load + ALU op) stay eligible.
  GemmOp op = MakeMatmul("mm", 64, 64, 64);
  op.a_producer_op = ir::EwiseOp::kScale;
  Schedule sched(op, TestConfig(), InlineOrder::kAfterPipelining);
  DetectionResult result = DetectPipelineBuffers(sched, target::AmpereSpec());
  EXPECT_TRUE(result.IsEligible("A_shared"));
  EXPECT_TRUE(result.IsEligible("A_reg"));
}

TEST(DetectTest, Rule1RefusesOnPreAmpereHardware) {
  // Pre-Ampere GPUs lack cp.async: shared-memory buffers cannot be
  // pipelined at all; register-level scoreboarding still works.
  Schedule sched(MakeMatmul("mm", 64, 64, 64), TestConfig());
  DetectionResult result =
      DetectPipelineBuffers(sched, target::VoltaLikeSpec());
  EXPECT_FALSE(result.IsEligible("A_shared"));
  EXPECT_FALSE(result.IsEligible("B_shared"));
  EXPECT_TRUE(result.IsEligible("A_reg"));
  EXPECT_TRUE(result.IsEligible("B_reg"));
}

TEST(DetectTest, Rule2RefusesFillOnceBuffer) {
  // Stencil-style schedules fill a buffer once instead of producing it in
  // a sequential load-and-use loop.
  Schedule sched(MakeMatmul("mm", 64, 64, 64), TestConfig());
  sched.FindStage("A_shared")->in_sequential_loop = false;
  DetectionResult result = DetectPipelineBuffers(sched, target::AmpereSpec());
  const pipeline::DetectionEntry* entry = result.Find("A_shared");
  ASSERT_NE(entry, nullptr);
  EXPECT_FALSE(entry->eligible);
  EXPECT_NE(entry->reason.find("sequential"), std::string::npos);
}

TEST(DetectTest, Rule3RefusesMismatchedSharedSyncPositions) {
  // Two shared-scope buffers whose loads sit at different loop levels
  // cannot share the scope's memory barriers: both are refused.
  Schedule sched(MakeMatmul("mm", 64, 64, 64), TestConfig());
  sched.FindStage("B_shared")->sync_position = 7;
  DetectionResult result = DetectPipelineBuffers(sched, target::AmpereSpec());
  EXPECT_FALSE(result.IsEligible("A_shared"));
  EXPECT_FALSE(result.IsEligible("B_shared"));
  const pipeline::DetectionEntry* entry = result.Find("A_shared");
  EXPECT_NE(entry->reason.find("synchronization position"), std::string::npos);
  // Register buffers are unaffected (scoreboard-synchronized scope).
  EXPECT_TRUE(result.IsEligible("A_reg"));
  EXPECT_TRUE(result.IsEligible("B_reg"));
}

TEST(DetectTest, Rule3RefusesPipeliningNextToBarrierBoundBuffer) {
  // If one shared buffer is ineligible (keeps threadblock barriers), its
  // same-scope peer cannot mix pipeline primitives with those barriers.
  GemmOp op = MakeMatmul("mm", 64, 64, 64);
  op.a_producer_op = ir::EwiseOp::kScale;
  Schedule sched(op, TestConfig(), InlineOrder::kBeforePipelining);
  DetectionResult result = DetectPipelineBuffers(sched, target::AmpereSpec());
  EXPECT_FALSE(result.IsEligible("A_shared"));
  EXPECT_FALSE(result.IsEligible("B_shared"));
}

TEST(DetectTest, AutoPipelineAssignsScopeStageCounts) {
  Schedule sched(MakeMatmul("mm", 64, 64, 64), TestConfig());
  AutoPipeline(sched, target::AmpereSpec());
  EXPECT_EQ(sched.FindStage("A_shared")->pipeline_stages, 3);
  EXPECT_EQ(sched.FindStage("B_shared")->pipeline_stages, 3);
  EXPECT_EQ(sched.FindStage("A_reg")->pipeline_stages, 2);
  EXPECT_EQ(sched.FindStage("B_reg")->pipeline_stages, 2);
}

TEST(DetectTest, AutoPipelineLeavesIneligibleBuffersUnpipelined) {
  GemmOp op = MakeMatmul("mm", 64, 64, 64);
  op.a_producer_op = ir::EwiseOp::kScale;
  Schedule sched(op, TestConfig(), InlineOrder::kBeforePipelining);
  AutoPipeline(sched, target::AmpereSpec());
  EXPECT_EQ(sched.FindStage("A_shared")->pipeline_stages, 1);
  EXPECT_EQ(sched.FindStage("B_shared")->pipeline_stages, 1);
  EXPECT_EQ(sched.FindStage("A_reg")->pipeline_stages, 2);
}

TEST(DetectTest, GlobalStagesAreNotCandidates) {
  Schedule sched(MakeMatmul("mm", 64, 64, 64), TestConfig());
  DetectionResult result = DetectPipelineBuffers(sched, target::AmpereSpec());
  EXPECT_EQ(result.Find("A"), nullptr);
  EXPECT_EQ(result.Find("B"), nullptr);
}

TEST(ScheduleTest, ValidateConfigRejectsBadTiles) {
  GemmOp op = MakeMatmul("mm", 64, 64, 64);
  std::string why;
  ScheduleConfig config = TestConfig();
  config.tile.tb_m = 48;  // does not divide 64
  EXPECT_FALSE(schedule::ValidateConfig(op, config, &why));
  EXPECT_EQ(why, "tb_m does not divide M");

  config = TestConfig();
  config.tile.warp_m = 24;  // does not divide tb_m
  EXPECT_FALSE(schedule::ValidateConfig(op, config, &why));

  config = TestConfig();
  config.smem_stages = 9;
  EXPECT_FALSE(schedule::ValidateConfig(op, config, &why));

  config = TestConfig();
  config.reg_stages = 3;  // exceeds ki extent (16/8 = 2)
  EXPECT_FALSE(schedule::ValidateConfig(op, config, &why));
}

TEST(ScheduleTest, SetPipelineStagesUnknownBufferThrows) {
  Schedule sched(MakeMatmul("mm", 64, 64, 64), TestConfig());
  EXPECT_THROW(sched.SetPipelineStages("no_such_buffer", 2), CheckError);
}

TEST(ScheduleTest, ConfigToStringMentionsKeyParameters) {
  ScheduleConfig config = TestConfig();
  std::string text = config.ToString();
  EXPECT_NE(text.find("smem_stages=3"), std::string::npos);
  EXPECT_NE(text.find("reg_stages=2"), std::string::npos);
}

}  // namespace
}  // namespace alcop
