// Unit tests of the pipeline program transformation (Sec. III) on
// hand-built IR: structural properties of the output (buffer expansion,
// index shifting, prologue and synchronization injection), group metadata,
// and rejection of illegal programs.
#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "ir/printer.h"
#include "pipeline/transform.h"
#include "sim/executor.h"
#include "support/check.h"

namespace alcop {
namespace {

using namespace alcop::ir;  // NOLINT(build/namespaces) - test IR building

BufferRegion Region(const Buffer& buffer, std::vector<Expr> offsets,
                    std::vector<int64_t> sizes) {
  BufferRegion region;
  region.buffer = buffer;
  region.offsets = std::move(offsets);
  region.sizes = std::move(sizes);
  return region;
}

// A minimal single-level load-and-use program:
//   for ko in 0..8: { copy buf <- src[ko]; barrier; copy out[ko] <- buf;
//                     barrier }
struct SingleLevelProgram {
  Buffer src, buf, out;
  Var ko;
  Stmt stmt;
};

SingleLevelProgram MakeSingleLevel(int64_t stages) {
  SingleLevelProgram p;
  p.src = MakeBuffer("src", MemScope::kGlobal, {8, 16});
  p.buf = MakeBuffer("buf", MemScope::kShared, {16});
  p.out = MakeBuffer("out", MemScope::kGlobal, {8, 16});
  p.ko = MakeVar("ko");
  Stmt load = Copy(Region(p.buf, {Int(0)}, {16}),
                   Region(p.src, {p.ko, Int(0)}, {1, 16}));
  Stmt use = Copy(Region(p.out, {p.ko, Int(0)}, {1, 16}),
                  Region(p.buf, {Int(0)}, {16}));
  Stmt loop = For(p.ko, 8, ForKind::kSerial,
                  Block({load, Barrier(), use, Barrier()}));
  p.stmt = Pragma(kPipelinePragma, p.buf, stages, Block({Alloc(p.buf), loop}));
  return p;
}

// Statement-count helpers.
int CountSyncs(const Stmt& s, SyncKind kind) {
  int count = 0;
  WalkWithLoops(s, [&](const Stmt& stmt, const std::vector<const ForNode*>&) {
    if (stmt->kind == StmtKind::kSync &&
        static_cast<const SyncNode*>(stmt.get())->sync_kind == kind) {
      ++count;
    }
  });
  return count;
}

int CountAsyncCopies(const Stmt& s) {
  int count = 0;
  WalkWithLoops(s, [&](const Stmt& stmt, const std::vector<const ForNode*>&) {
    if (stmt->kind == StmtKind::kCopy &&
        static_cast<const CopyNode*>(stmt.get())->is_async) {
      ++count;
    }
  });
  return count;
}

TEST(TransformTest, NoHintsReturnsProgramUnchanged) {
  SingleLevelProgram p = MakeSingleLevel(3);
  // Strip the pragma: no hints anywhere.
  const auto* pragma = static_cast<const PragmaNode*>(p.stmt.get());
  pipeline::TransformResult result =
      pipeline::ApplyPipelineTransform(pragma->body);
  EXPECT_EQ(result.stmt.get(), pragma->body.get());
  EXPECT_TRUE(result.groups.empty());
}

TEST(TransformTest, SingleLevelStructure) {
  SingleLevelProgram p = MakeSingleLevel(3);
  pipeline::TransformResult result = pipeline::ApplyPipelineTransform(p.stmt);

  ASSERT_EQ(result.groups.size(), 1u);
  const pipeline::PipelineGroupInfo& g = result.groups[0];
  EXPECT_EQ(g.stages, 3);
  EXPECT_EQ(g.mode, pipeline::PipelineMode::kTop);
  EXPECT_EQ(g.loop_var, "ko");
  EXPECT_EQ(g.loop_extent, 8);
  EXPECT_EQ(g.wait_ahead, 0);
  ASSERT_EQ(g.buffer_names.size(), 1u);
  EXPECT_EQ(g.buffer_names[0], "buf");

  // Buffer expanded by the stage count.
  std::vector<Buffer> buffers = CollectAllocatedBuffers(result.stmt);
  ASSERT_EQ(buffers.size(), 1u);
  EXPECT_EQ(buffers[0]->shape, (std::vector<int64_t>{3, 16}));

  // Prologue: stages-1 copies before the loop; loop has one load per
  // iteration: stages-1 + 1 async copies statically.
  EXPECT_EQ(CountAsyncCopies(result.stmt), 3);
  // Sync primitives: acquire/commit per prologue chunk and per loop, one
  // wait and one release in the loop.
  EXPECT_EQ(CountSyncs(result.stmt, SyncKind::kProducerAcquire), 3);
  EXPECT_EQ(CountSyncs(result.stmt, SyncKind::kProducerCommit), 3);
  EXPECT_EQ(CountSyncs(result.stmt, SyncKind::kConsumerWait), 1);
  EXPECT_EQ(CountSyncs(result.stmt, SyncKind::kConsumerRelease), 1);
  // Barriers guarding the buffer are subsumed by the pipeline primitives.
  EXPECT_EQ(CountSyncs(result.stmt, SyncKind::kBarrier), 0);

  // The printed loop body contains the shifted, wrapped indices of Fig. 7.
  std::string text = ToString(result.stmt);
  EXPECT_NE(text.find("(ko + 2) % 3"), std::string::npos) << text;
  EXPECT_NE(text.find("(ko + 2) % 8"), std::string::npos) << text;
  EXPECT_NE(text.find("ko % 3"), std::string::npos) << text;
}

TEST(TransformTest, SingleLevelIsFunctionallyCorrect) {
  for (int64_t stages : {2, 3, 4, 8}) {
    SingleLevelProgram p = MakeSingleLevel(stages);
    pipeline::TransformResult result =
        pipeline::ApplyPipelineTransform(p.stmt);
    std::vector<float> src(8 * 16);
    for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<float>(i);
    sim::Executor exec;
    exec.Bind(p.src, src);
    exec.Run(result.stmt);
    EXPECT_EQ(exec.Data(p.out), src) << "stages=" << stages;
  }
}

TEST(TransformTest, TwoBuffersSameLoopShareOneGroup) {
  Buffer src_a = MakeBuffer("srcA", MemScope::kGlobal, {8, 16});
  Buffer src_b = MakeBuffer("srcB", MemScope::kGlobal, {8, 16});
  Buffer buf_a = MakeBuffer("bufA", MemScope::kShared, {16});
  Buffer buf_b = MakeBuffer("bufB", MemScope::kShared, {16});
  Buffer out = MakeBuffer("out", MemScope::kGlobal, {8, 16});
  Var ko = MakeVar("ko");
  Stmt loop = For(
      ko, 8, ForKind::kSerial,
      Block({Copy(Region(buf_a, {Int(0)}, {16}),
                  Region(src_a, {ko, Int(0)}, {1, 16})),
             Copy(Region(buf_b, {Int(0)}, {16}),
                  Region(src_b, {ko, Int(0)}, {1, 16})),
             Barrier(),
             Copy(Region(out, {ko, Int(0)}, {1, 16}),
                  Region(buf_a, {Int(0)}, {16})),
             Copy(Region(out, {ko, Int(0)}, {1, 16}),
                  Region(buf_b, {Int(0)}, {16})),
             Barrier()}));
  Stmt prog = Pragma(kPipelinePragma, buf_a, 2,
                     Pragma(kPipelinePragma, buf_b, 2,
                            Block({Alloc(buf_a), Alloc(buf_b), loop})));
  pipeline::TransformResult result = pipeline::ApplyPipelineTransform(prog);
  ASSERT_EQ(result.groups.size(), 1u);
  EXPECT_EQ(result.groups[0].buffer_names.size(), 2u);
  // One acquire/commit pair per prologue chunk and per iteration, shared
  // by both buffers.
  EXPECT_EQ(CountSyncs(result.stmt, SyncKind::kProducerCommit), 2);
}

TEST(TransformTest, StagesExceedingLoopExtentThrows) {
  SingleLevelProgram p = MakeSingleLevel(9);  // extent is 8
  EXPECT_THROW(pipeline::ApplyPipelineTransform(p.stmt), CheckError);
}

TEST(TransformTest, BufferWithoutProducerThrows) {
  Buffer buf = MakeBuffer("buf", MemScope::kShared, {16});
  Buffer out = MakeBuffer("out", MemScope::kGlobal, {8, 16});
  Var ko = MakeVar("ko");
  Stmt loop = For(ko, 8, ForKind::kSerial,
                  Copy(Region(out, {ko, Int(0)}, {1, 16}),
                       Region(buf, {Int(0)}, {16})));
  Stmt prog = Pragma(kPipelinePragma, buf, 2, Block({Alloc(buf), loop}));
  EXPECT_THROW(pipeline::ApplyPipelineTransform(prog), CheckError);
}

TEST(TransformTest, BufferWithoutSequentialLoopThrows) {
  // The load sits in a warp-parallel loop only: rule 2 violation surfaces
  // as a hard error at the IR level.
  Buffer src = MakeBuffer("src", MemScope::kGlobal, {8, 16});
  Buffer buf = MakeBuffer("buf", MemScope::kShared, {16});
  Buffer out = MakeBuffer("out", MemScope::kGlobal, {8, 16});
  Var w = MakeVar("w");
  Stmt loop = For(w, 8, ForKind::kWarp,
                  Block({Copy(Region(buf, {Int(0)}, {16}),
                              Region(src, {w, Int(0)}, {1, 16})),
                         Copy(Region(out, {w, Int(0)}, {1, 16}),
                              Region(buf, {Int(0)}, {16}))}));
  Stmt prog = Pragma(kPipelinePragma, buf, 2, Block({Alloc(buf), loop}));
  EXPECT_THROW(pipeline::ApplyPipelineTransform(prog), CheckError);
}

TEST(TransformTest, ConsumerOutsideLoopThrows) {
  Buffer src = MakeBuffer("src", MemScope::kGlobal, {8, 16});
  Buffer buf = MakeBuffer("buf", MemScope::kShared, {16});
  Buffer out = MakeBuffer("out", MemScope::kGlobal, {16});
  Var ko = MakeVar("ko");
  Stmt loop = For(ko, 8, ForKind::kSerial,
                  Copy(Region(buf, {Int(0)}, {16}),
                       Region(src, {ko, Int(0)}, {1, 16})));
  Stmt use = Copy(Region(out, {Int(0)}, {16}), Region(buf, {Int(0)}, {16}));
  Stmt prog =
      Pragma(kPipelinePragma, buf, 2, Block({Alloc(buf), loop, use}));
  EXPECT_THROW(pipeline::ApplyPipelineTransform(prog), CheckError);
}

TEST(TransformTest, MismatchedStageCountsInOneLoopThrow) {
  // Two shared buffers in one loop with different stage counts: the
  // scope-based synchronization cannot serve both (rule 3 safety net).
  Buffer src_a = MakeBuffer("srcA", MemScope::kGlobal, {8, 16});
  Buffer src_b = MakeBuffer("srcB", MemScope::kGlobal, {8, 16});
  Buffer buf_a = MakeBuffer("bufA", MemScope::kShared, {16});
  Buffer buf_b = MakeBuffer("bufB", MemScope::kShared, {16});
  Buffer out = MakeBuffer("out", MemScope::kGlobal, {8, 16});
  Var ko = MakeVar("ko");
  Stmt loop = For(
      ko, 8, ForKind::kSerial,
      Block({Copy(Region(buf_a, {Int(0)}, {16}),
                  Region(src_a, {ko, Int(0)}, {1, 16})),
             Copy(Region(buf_b, {Int(0)}, {16}),
                  Region(src_b, {ko, Int(0)}, {1, 16})),
             Copy(Region(out, {ko, Int(0)}, {1, 16}),
                  Region(buf_a, {Int(0)}, {16})),
             Copy(Region(out, {ko, Int(0)}, {1, 16}),
                  Region(buf_b, {Int(0)}, {16}))}));
  Stmt prog = Pragma(kPipelinePragma, buf_a, 2,
                     Pragma(kPipelinePragma, buf_b, 3,
                            Block({Alloc(buf_a), Alloc(buf_b), loop})));
  EXPECT_THROW(pipeline::ApplyPipelineTransform(prog), CheckError);
}

TEST(TransformTest, PipelineLoopSkipsIndexingVariables) {
  // The pipeline loop search must skip a serial loop whose variable
  // indexes the buffer (that loop iterates *within* the buffer) and pick
  // the next one out.
  Buffer src = MakeBuffer("src", MemScope::kGlobal, {8, 4, 16});
  Buffer buf = MakeBuffer("buf", MemScope::kShared, {4, 16});
  Buffer out = MakeBuffer("out", MemScope::kGlobal, {8, 4, 16});
  Var ko = MakeVar("ko");
  Var t = MakeVar("t");
  Var t2 = MakeVar("t2");
  Stmt load = For(t, 4, ForKind::kSerial,
                  Copy(Region(buf, {t, Int(0)}, {1, 16}),
                       Region(src, {ko, t, Int(0)}, {1, 1, 16})));
  Stmt use = For(t2, 4, ForKind::kSerial,
                 Copy(Region(out, {ko, t2, Int(0)}, {1, 1, 16}),
                      Region(buf, {t2, Int(0)}, {1, 16})));
  Stmt loop = For(ko, 8, ForKind::kSerial, Block({load, use}));
  Stmt prog = Pragma(kPipelinePragma, buf, 2, Block({Alloc(buf), loop}));

  // The load is nested one loop deeper than the loop body top level, which
  // the restructuring step does not support: the pass must identify ko as
  // the pipeline loop and then fail loudly rather than mis-transform.
  try {
    pipeline::TransformResult result = pipeline::ApplyPipelineTransform(prog);
    // If supported, the group must be on ko, not t.
    ASSERT_EQ(result.groups.size(), 1u);
    EXPECT_EQ(result.groups[0].loop_var, "ko");
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("top level"), std::string::npos)
        << e.what();
  }
}

TEST(TransformTest, TransformedProgramsAreDeterministic) {
  SingleLevelProgram p1 = MakeSingleLevel(3);
  pipeline::TransformResult r1 = pipeline::ApplyPipelineTransform(p1.stmt);
  pipeline::TransformResult r2 = pipeline::ApplyPipelineTransform(p1.stmt);
  EXPECT_EQ(ToString(r1.stmt), ToString(r2.stmt));
}

}  // namespace
}  // namespace alcop
