// Model-guided search pruning: the analytical keep-set
// (tuner::SpaceOptions::model_topk) must leave the space, trial order and
// best-found result untouched while skipping most measurements, and the
// rank-quality metrics it is gated on must behave like rank metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "obs/metrics.h"
#include "perfmodel/calibration.h"
#include "target/gpu_spec.h"
#include "tuner/space.h"
#include "tuner/strategy.h"
#include "workloads/ops.h"

namespace alcop {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double BestMeasured(const tuner::TuningResult& result) {
  double best = kInf;
  for (double cycles : result.measured) {
    if (cycles < best) best = cycles;
  }
  return best;
}

size_t FiniteMeasures(const tuner::TuningResult& result) {
  size_t n = 0;
  for (double cycles : result.measured) {
    if (cycles < kInf) ++n;
  }
  return n;
}

TEST(ModelPrune, ExhaustiveBestUnchangedAtDefaultCut) {
  target::GpuSpec spec = target::AmpereSpec();
  const schedule::GemmOp& op = workloads::FindOp("MM_RN50_FC");

  tuner::TuningTask off = tuner::MakeSimulatorTask(op, spec);
  tuner::SpaceOptions options;
  options.model_topk = tuner::SpaceOptions::kDefaultModelTopK;
  tuner::TuningTask on = tuner::MakeSimulatorTask(op, spec, options);

  // Pruning must not touch the space itself: same configs, same order.
  ASSERT_EQ(off.space.size(), on.space.size());

  obs::Counter& pruned =
      obs::Registry::Global().GetCounter("tuner.pruned_model");
  uint64_t before = pruned.Value();
  tuner::TuningResult full = tuner::ExhaustiveSearch(off);
  uint64_t after_off = pruned.Value();
  EXPECT_EQ(after_off, before) << "pruning counter moved with pruning off";
  tuner::TuningResult cut = tuner::ExhaustiveSearch(on);
  uint64_t after_on = pruned.Value();
  EXPECT_GT(after_on, after_off) << "pruning never fired";

  // The guarantee the 10x effective-throughput claim stands on: the best
  // config survives the cut, bit for bit.
  double best_full = BestMeasured(full);
  double best_cut = BestMeasured(cut);
  ASSERT_LT(best_full, kInf);
  EXPECT_EQ(best_full, best_cut);

  // And the cut actually skips most of the space.
  EXPECT_LT(FiniteMeasures(cut), FiniteMeasures(full));
  EXPECT_GE(FiniteMeasures(cut), 1u);
}

TEST(ModelPrune, ExplorationTailSurvivesTinyCut) {
  target::GpuSpec spec = target::AmpereSpec();
  const schedule::GemmOp& op = workloads::FindOp("BMM_GPT2_QK");

  tuner::SpaceOptions options;
  options.model_topk = 1;
  options.model_explore_stride = 64;
  tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec, options);
  tuner::TuningResult result = tuner::ExhaustiveSearch(task);

  // Even with a top-1 cut, every 64th config (in model-rank order) stays
  // measurable, so learned strategies keep a view of the whole space.
  size_t finite = FiniteMeasures(result);
  EXPECT_GT(finite, 1u) << "exploration tail was pruned away";
}

TEST(ModelPrune, XgbSearchUnaffectedWhenOff) {
  // With model_topk = 0 (the default), nothing changes: the task measures
  // every feasible config the static prefilter admits.
  target::GpuSpec spec = target::AmpereSpec();
  const schedule::GemmOp& op = workloads::FindOp("MM_RN50_FC");
  tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
  obs::Counter& pruned =
      obs::Registry::Global().GetCounter("tuner.pruned_model");
  uint64_t before = pruned.Value();
  tuner::XgbOptions options;
  options.seed = 7;
  tuner::TuningResult result = tuner::XgbTuner(task, 24, options);
  EXPECT_EQ(pruned.Value(), before);
  EXPECT_LT(BestMeasured(result), kInf);
}

// ---- Rank-quality metric properties ----

TEST(RankQuality, PerfectRankingScoresOne) {
  std::vector<double> measured = {10, 20, 30, 40, 50, 60, 70, 80};
  perfmodel::RankQuality rq =
      perfmodel::ComputeRankQuality(measured, measured, 4);
  EXPECT_DOUBLE_EQ(rq.kendall_tau, 1.0);
  EXPECT_DOUBLE_EQ(rq.topk_recall, 1.0);
  EXPECT_EQ(rq.count, 8);
  EXPECT_EQ(rq.k, 4);
}

TEST(RankQuality, ReversedRankingScoresMinusOne) {
  std::vector<double> measured = {10, 20, 30, 40, 50, 60, 70, 80};
  std::vector<double> predicted = {80, 70, 60, 50, 40, 30, 20, 10};
  perfmodel::RankQuality rq =
      perfmodel::ComputeRankQuality(predicted, measured, 4);
  EXPECT_DOUBLE_EQ(rq.kendall_tau, -1.0);
  EXPECT_DOUBLE_EQ(rq.topk_recall, 0.0);
}

TEST(RankQuality, InfinitePredictionsSortLast) {
  std::vector<double> measured = {1, 2, 3, 4};
  std::vector<double> predicted = {1, 2, kInf, kInf};
  perfmodel::RankQuality rq =
      perfmodel::ComputeRankQuality(predicted, measured, 2);
  EXPECT_DOUBLE_EQ(rq.topk_recall, 1.0);
  EXPECT_GT(rq.kendall_tau, 0.0);
}

TEST(CoverageRecall, StrictMissCoveredByEquallyFastSurvivor) {
  // The measured best (index 0) is *not* in the predicted cut, but a kept
  // config (index 1) measures within 1%: covered — pruning it is
  // harmless. best_survives is still false, which is the distinction the
  // tuning bench's bit-exact best-found gate cares about.
  std::vector<double> measured = {100.0, 100.5, 200.0, 300.0};
  std::vector<double> predicted = {9.0, 1.0, 2.0, 3.0};
  perfmodel::CoverageRecall cov = perfmodel::ComputeCoverageRecall(
      predicted, measured, /*top=*/1, /*cut=*/3, /*tolerance=*/1.01);
  EXPECT_DOUBLE_EQ(cov.coverage, 1.0);
  EXPECT_FALSE(cov.best_survives);

  // With a tolerance too tight for the 0.5% gap, the miss counts.
  perfmodel::CoverageRecall tight = perfmodel::ComputeCoverageRecall(
      predicted, measured, /*top=*/1, /*cut=*/3, /*tolerance=*/1.001);
  EXPECT_DOUBLE_EQ(tight.coverage, 0.0);
}

TEST(CoverageRecall, FullCutCoversEverything) {
  std::vector<double> measured = {4, 3, 2, 1};
  std::vector<double> predicted = {1, 2, 3, 4};  // fully wrong order
  perfmodel::CoverageRecall cov = perfmodel::ComputeCoverageRecall(
      predicted, measured, /*top=*/4, /*cut=*/4, /*tolerance=*/1.0);
  EXPECT_DOUBLE_EQ(cov.coverage, 1.0);
  EXPECT_TRUE(cov.best_survives);
}

TEST(RankQuality, AnalyticalModelCoversFig10Operator) {
  // The property the default pruning cut is gated on, asserted for one
  // operator in-tree (the full 12-operator audit lives in
  // bench/calibration.cc): the measured top-32 is effectively preserved
  // by the model's top-128.
  target::GpuSpec spec = target::AmpereSpec();
  const schedule::GemmOp& op = workloads::FindOp("MM_RN50_FC");
  tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
  const size_t n = task.space.size();
  std::vector<double> measured(n), predicted(n);
  for (size_t i = 0; i < n; ++i) {
    measured[i] = task.measure(task.space[i]);
    predicted[i] = perfmodel::PredictCycles(op, task.space[i], spec);
  }
  perfmodel::CoverageRecall cov = perfmodel::ComputeCoverageRecall(
      predicted, measured, 32, tuner::SpaceOptions::kDefaultModelTopK, 1.01);
  EXPECT_GE(cov.coverage, 0.95);
  EXPECT_TRUE(cov.best_survives);
  perfmodel::RankQuality rq =
      perfmodel::ComputeRankQuality(predicted, measured, 32);
  EXPECT_GT(rq.kendall_tau, 0.3);
}

}  // namespace
}  // namespace alcop
