// Tests of the observability surface: the HTTP/1.1 parser and response
// formatter (serving/http.h), the Prometheus text exposition renderer
// (obs/prometheus.h), and the end-to-end HTTP front end of a live
// alcopd — /metrics, /healthz, POST /v1/<method>, and the access log.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netinet/in.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "serving/http.h"
#include "serving/server.h"
#include "sim/sim_cache.h"
#include "target/gpu_spec.h"
#include "tuner/records.h"

namespace alcop {
namespace {

using serving::HttpParseResult;
using serving::HttpRequest;
using serving::ParseHttpRequest;

// ------------------------------------------------------------ HTTP parser

HttpParseResult Parse(const std::string& raw, HttpRequest* out = nullptr,
                      size_t* consumed = nullptr) {
  HttpRequest request;
  size_t used = 0;
  std::string error;
  HttpParseResult result =
      ParseHttpRequest(raw, out != nullptr ? out : &request,
                       consumed != nullptr ? consumed : &used, &error);
  return result;
}

TEST(HttpParserTest, ParsesGetWithHeaders) {
  HttpRequest request;
  size_t consumed = 0;
  std::string raw =
      "GET /metrics HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n";
  ASSERT_EQ(Parse(raw, &request, &consumed), HttpParseResult::kOk);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/metrics");
  EXPECT_EQ(request.version, "HTTP/1.1");
  EXPECT_EQ(consumed, raw.size());
  EXPECT_TRUE(request.keep_alive);
  ASSERT_NE(request.FindHeader("host"), nullptr);  // case-insensitive
  EXPECT_EQ(*request.FindHeader("HOST"), "localhost");
  EXPECT_EQ(request.FindHeader("absent"), nullptr);
}

TEST(HttpParserTest, ParsesPostBodyAndPipelinedSuccessor) {
  HttpRequest request;
  size_t consumed = 0;
  std::string first =
      "POST /v1/ping HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
  std::string raw = first + "GET /healthz HTTP/1.1\r\n\r\n";
  ASSERT_EQ(Parse(raw, &request, &consumed), HttpParseResult::kOk);
  EXPECT_EQ(request.body, "{\"a\":1}");
  EXPECT_EQ(consumed, first.size());
  // The remainder parses as its own request.
  raw.erase(0, consumed);
  ASSERT_EQ(Parse(raw, &request, &consumed), HttpParseResult::kOk);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
}

TEST(HttpParserTest, NeedsMoreOnTruncatedHeadersAndBody) {
  // Header section not terminated yet.
  EXPECT_EQ(Parse("GET / HTTP/1.1\r\nHost: x"), HttpParseResult::kNeedMore);
  // Declared body longer than what has arrived.
  EXPECT_EQ(Parse("POST /v1/tune HTTP/1.1\r\nContent-Length: 10\r\n\r\n{\"m\""),
            HttpParseResult::kNeedMore);
  EXPECT_EQ(Parse(""), HttpParseResult::kNeedMore);
}

TEST(HttpParserTest, RejectsMalformedInputs) {
  struct Case {
    const char* label;
    std::string raw;
  };
  const std::string huge_header =
      "GET / HTTP/1.1\r\nX-Pad: " + std::string(20000, 'a') + "\r\n\r\n";
  // Oversized header section with no terminator in sight must fail fast,
  // not buffer forever.
  const std::string huge_no_terminator =
      "GET / HTTP/1.1\r\nX-Pad: " + std::string(20000, 'a');
  std::vector<Case> cases = {
      {"missing spaces", "GET/\r\n\r\n"},
      {"lowercase method", "get / HTTP/1.1\r\n\r\n"},
      {"overlong method", std::string(17, 'G') + " / HTTP/1.1\r\n\r\n"},
      {"relative target", "GET metrics HTTP/1.1\r\n\r\n"},
      {"control char in target", "GET /a\x01" "b HTTP/1.1\r\n\r\n"},
      {"bad version", "GET / HTTP/2\r\n\r\n"},
      {"not http at all", "SSH-2.0-OpenSSH\r\n\r\n"},
      {"header without colon", "GET / HTTP/1.1\r\nbroken\r\n\r\n"},
      {"header name with space", "GET / HTTP/1.1\r\nbad name: x\r\n\r\n"},
      {"empty header name", "GET / HTTP/1.1\r\n: x\r\n\r\n"},
      {"non-numeric length", "POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n"},
      {"negative length", "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n"},
      {"oversized body",
       "POST / HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n"},
      {"chunked encoding",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"},
      {"oversized headers", huge_header},
      {"oversized headers unterminated", huge_no_terminator},
  };
  for (const Case& test_case : cases) {
    HttpRequest request;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(ParseHttpRequest(test_case.raw, &request, &consumed, &error),
              HttpParseResult::kBad)
        << test_case.label;
    EXPECT_FALSE(error.empty()) << test_case.label;
  }
}

TEST(HttpParserTest, ConnectionHeaderControlsKeepAlive) {
  HttpRequest request;
  ASSERT_EQ(Parse("GET / HTTP/1.0\r\n\r\n", &request), HttpParseResult::kOk);
  EXPECT_FALSE(request.keep_alive);  // 1.0 defaults to close
  ASSERT_EQ(Parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", &request),
            HttpParseResult::kOk);
  EXPECT_TRUE(request.keep_alive);
  ASSERT_EQ(Parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", &request),
            HttpParseResult::kOk);
  EXPECT_FALSE(request.keep_alive);
}

TEST(HttpFormatTest, ResponseCarriesLengthAndConnection) {
  std::string response = serving::FormatHttpResponse(
      200, "text/plain", "hello", {{"X-Extra", "1"}}, false);
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(response.find("X-Extra: 1\r\n"), std::string::npos);
  EXPECT_EQ(response.substr(response.size() - 5), "hello");
}

// ---------------------------------------------------- Prometheus renderer

obs::MetricSnapshot Counter(const std::string& name, double value,
                            const std::string& help = "") {
  obs::MetricSnapshot snapshot;
  snapshot.kind = obs::MetricSnapshot::Kind::kCounter;
  snapshot.name = name;
  snapshot.help = help;
  snapshot.value = value;
  return snapshot;
}

TEST(PrometheusTest, SplitsLabelsAndSanitizesNames) {
  std::vector<obs::PromLabel> labels;
  EXPECT_EQ(obs::SplitPromLabels("serving.request.latency.us|lane=fast",
                                 &labels),
            "serving.request.latency.us");
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].key, "lane");
  EXPECT_EQ(labels[0].value, "fast");
  // A segment without '=' folds back into the base name.
  labels.clear();
  EXPECT_EQ(obs::SplitPromLabels("a|b|k=v", &labels), "a_b");
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(obs::PromMetricName("serving.request.latency.us"),
            "alcop_serving_request_latency_us");
  EXPECT_EQ(obs::PromMetricName("a|b c-d"), "alcop_a_b_c_d");
}

TEST(PrometheusTest, EscapesLabelValues) {
  obs::MetricSnapshot snapshot =
      Counter("t.esc|path=a\\b\"c\nd", 1.0, "escape probe");
  std::string text = obs::RenderPrometheus({snapshot});
  // Backslash, quote and newline must come out as \\ , \" and \n.
  EXPECT_NE(text.find("alcop_t_esc{path=\"a\\\\b\\\"c\\nd\"} 1"),
            std::string::npos)
      << text;
  EXPECT_EQ(obs::PromEscapeLabelValue("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(obs::PromEscapeHelp("x\\y\nz"), "x\\\\y\\nz");
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeWithConsistentCount) {
  obs::MetricSnapshot snapshot;
  snapshot.kind = obs::MetricSnapshot::Kind::kHistogram;
  snapshot.name = "t.hist.us|lane=fast";
  snapshot.help = "test histogram";
  snapshot.histogram = obs::HistogramData{};
  snapshot.histogram.buckets[0] = 3;  // [0, 1)
  snapshot.histogram.buckets[2] = 2;  // [2, 4)
  snapshot.histogram.buckets[5] = 1;  // [16, 32)
  snapshot.histogram.count = 6;
  snapshot.histogram.sum = 42.5;
  snapshot.histogram.max = 20.0;
  std::string text = obs::RenderPrometheus({snapshot});

  EXPECT_NE(text.find("# TYPE alcop_t_hist_us histogram"), std::string::npos);
  EXPECT_NE(text.find("# HELP alcop_t_hist_us test histogram"),
            std::string::npos);
  // Cumulative counts: 3 at le=1, still 3 at le=2, 5 at le=4, 5 until
  // le=16, 6 at le=32, 6 at +Inf == _count.
  EXPECT_NE(text.find("_bucket{lane=\"fast\",le=\"1\"} 3"), std::string::npos);
  EXPECT_NE(text.find("_bucket{lane=\"fast\",le=\"2\"} 3"), std::string::npos);
  EXPECT_NE(text.find("_bucket{lane=\"fast\",le=\"4\"} 5"), std::string::npos);
  EXPECT_NE(text.find("_bucket{lane=\"fast\",le=\"32\"} 6"),
            std::string::npos);
  EXPECT_NE(text.find("_bucket{lane=\"fast\",le=\"+Inf\"} 6"),
            std::string::npos);
  EXPECT_NE(text.find("_sum{lane=\"fast\"} 42.5"), std::string::npos);
  EXPECT_NE(text.find("_count{lane=\"fast\"} 6"), std::string::npos);
  // No buckets beyond the top populated one (le="64" never appears).
  EXPECT_EQ(text.find("le=\"64\""), std::string::npos);
}

TEST(PrometheusTest, LaneSeriesShareOneFamilyBlock) {
  obs::MetricSnapshot fast, slow;
  fast.kind = slow.kind = obs::MetricSnapshot::Kind::kHistogram;
  fast.name = "t.lat.us|lane=fast";
  slow.name = "t.lat.us|lane=slow";
  fast.help = slow.help = "latency";
  fast.histogram = slow.histogram = obs::HistogramData{};
  fast.histogram.buckets[0] = 1;
  fast.histogram.count = 1;
  std::string text = obs::RenderPrometheus({fast, slow});
  // Exactly one TYPE line for the family, both lane series present.
  size_t first = text.find("# TYPE alcop_t_lat_us histogram");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE alcop_t_lat_us histogram", first + 1),
            std::string::npos);
  EXPECT_NE(text.find("{lane=\"fast\",le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("{lane=\"slow\",le=\"+Inf\"} 0"), std::string::npos);
}

TEST(PrometheusTest, OutputIsByteDeterministic) {
  std::vector<obs::MetricSnapshot> snapshot = {
      Counter("t.z", 3, "last"), Counter("t.a", 1, "first"),
      Counter("t.m|k=v", 2)};
  std::string once = obs::RenderPrometheus(snapshot);
  std::string twice = obs::RenderPrometheus(snapshot);
  EXPECT_EQ(once, twice);
  // Families render in sorted name order regardless of snapshot order.
  EXPECT_LT(once.find("alcop_t_a"), once.find("alcop_t_m"));
  EXPECT_LT(once.find("alcop_t_m"), once.find("alcop_t_z"));
  // Two scrapes of the live registry with no writes in between are
  // byte-identical too.
  EXPECT_EQ(obs::RenderPrometheus(), obs::RenderPrometheus());
}

// ------------------------------------------------- end-to-end HTTP daemon

class HttpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim::ResetSimCache();
    tuner::TuningStore::Global().Clear();
    socket_path_ = "/tmp/alcopd_http_test_" + std::to_string(::getpid()) +
                   ".sock";
    access_log_path_ = "/tmp/alcopd_http_test_" + std::to_string(::getpid()) +
                       ".access.jsonl";
    std::remove(access_log_path_.c_str());
    options_.socket_path = socket_path_;
    options_.spec = target::AmpereSpec();
    options_.default_trials = 4;
    options_.persist_on_shutdown = false;
    options_.http_port = 0;  // ephemeral
  }

  void TearDown() override {
    std::remove(socket_path_.c_str());
    std::remove(access_log_path_.c_str());
    sim::ResetSimCache();
    tuner::TuningStore::Global().Clear();
  }

  std::string socket_path_;
  std::string access_log_path_;
  serving::ServerOptions options_;
};

TEST_F(HttpServerTest, HealthzMetricsAndDispatch) {
  serving::Server server(options_);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  int port = server.http_port();
  ASSERT_GT(port, 0);

  std::optional<serving::HttpResponse> health =
      serving::HttpCall(port, "GET", "/healthz");
  ASSERT_TRUE(health.has_value());
  EXPECT_EQ(health->status, 200);
  EXPECT_NE(health->body.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(health->FindHeader("X-Cache-Headroom-Bytes"), nullptr);

  // POST /v1/ping rides the same dispatch path as a socket frame.
  std::optional<serving::HttpResponse> pong =
      serving::HttpCall(port, "POST", "/v1/ping", "{\"id\":7}");
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->status, 200);
  EXPECT_NE(pong->body.find("\"pong\":true"), std::string::npos);
  EXPECT_NE(pong->body.find("\"id\":7"), std::string::npos);

  // A compile through HTTP lands in the same caches the socket uses.
  std::optional<serving::HttpResponse> compiled = serving::HttpCall(
      port, "POST", "/v1/compile",
      "{\"id\":1,\"m\":512,\"n\":512,\"k\":512,"
      "\"config\":{\"tb\":[128,128,32],\"warp\":[64,64,16],\"smem\":2}}");
  ASSERT_TRUE(compiled.has_value());
  EXPECT_NE(compiled->body.find("\"ok\":true"), std::string::npos)
      << compiled->body;

  std::optional<serving::HttpResponse> metrics =
      serving::HttpCall(port, "GET", "/metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->status, 200);
  const std::string* content_type = metrics->FindHeader("Content-Type");
  ASSERT_NE(content_type, nullptr);
  EXPECT_NE(content_type->find("version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics->body.find("# TYPE alcop_serving_requests counter"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("# TYPE alcop_serving_inflight gauge"),
            std::string::npos);
  EXPECT_NE(
      metrics->body.find(
          "alcop_serving_request_latency_us_count{lane=\"fast\"}"),
      std::string::npos);

  server.Stop();
}

TEST_F(HttpServerTest, TransportErrorsGetHttpStatusCodes) {
  serving::Server server(options_);
  ASSERT_TRUE(server.Start());
  int port = server.http_port();

  std::optional<serving::HttpResponse> missing =
      serving::HttpCall(port, "GET", "/nope");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);

  std::optional<serving::HttpResponse> wrong_verb =
      serving::HttpCall(port, "POST", "/metrics", "{}");
  ASSERT_TRUE(wrong_verb.has_value());
  EXPECT_EQ(wrong_verb->status, 405);

  std::optional<serving::HttpResponse> get_v1 =
      serving::HttpCall(port, "GET", "/v1/ping");
  ASSERT_TRUE(get_v1.has_value());
  EXPECT_EQ(get_v1->status, 405);

  // An application-level error is still HTTP 200 with ok:false — the
  // transport succeeded, the request did not.
  std::optional<serving::HttpResponse> bad_method =
      serving::HttpCall(port, "POST", "/v1/definitely_not_a_method", "{}");
  ASSERT_TRUE(bad_method.has_value());
  EXPECT_EQ(bad_method->status, 200);
  EXPECT_NE(bad_method->body.find("\"ok\":false"), std::string::npos);

  // Raw garbage on the wire gets 400 and a closed connection.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_TRUE(serving::HttpWriteAll(fd, "NOT HTTP AT ALL\r\n\r\n"));
  std::string raw;
  char buf[4096];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(raw.find("HTTP/1.1 400"), std::string::npos) << raw;

  server.Stop();
}

TEST_F(HttpServerTest, AccessLogMatchesHistogramCounts) {
  options_.access_log_path = access_log_path_;
  serving::Server server(options_);
  ASSERT_TRUE(server.Start());
  int port = server.http_port();

  // Latency histograms are process-global; delta against the counts at
  // test start so earlier in-process servers don't skew the comparison.
  obs::Registry& registry = obs::Registry::Global();
  uint64_t fast_before =
      registry.GetHistogram("serving.request.latency.us|lane=fast")
          .Data()
          .count;
  uint64_t slow_before =
      registry.GetHistogram("serving.request.latency.us|lane=slow")
          .Data()
          .count;

  // One fast-lane request over HTTP, one slow-lane compile, one error.
  ASSERT_TRUE(serving::HttpCall(port, "POST", "/v1/ping", "{}").has_value());
  std::optional<serving::HttpResponse> compiled = serving::HttpCall(
      port, "POST", "/v1/compile",
      "{\"id\":2,\"m\":256,\"n\":256,\"k\":256,"
      "\"config\":{\"tb\":[64,64,32],\"warp\":[32,32,16],\"smem\":2}}");
  ASSERT_TRUE(compiled.has_value());
  std::optional<serving::HttpResponse> bad =
      serving::HttpCall(port, "POST", "/v1/compile", "{\"id\":3}");
  ASSERT_TRUE(bad.has_value());
  EXPECT_NE(bad->body.find("\"ok\":false"), std::string::npos);

  uint64_t fast_after =
      registry.GetHistogram("serving.request.latency.us|lane=fast")
          .Data()
          .count;
  uint64_t slow_after =
      registry.GetHistogram("serving.request.latency.us|lane=slow")
          .Data()
          .count;
  uint64_t completed = (fast_after - fast_before) + (slow_after - slow_before);
  EXPECT_EQ(completed, 3u);

  // Completion bookkeeping runs before the response is sent, so by the
  // time HttpCall returned, the access log holds every request.
  std::ifstream log(access_log_path_);
  ASSERT_TRUE(log.is_open());
  std::string line;
  uint64_t lines = 0;
  uint64_t error_lines = 0;
  while (std::getline(log, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_NE(line.find("\"id\":"), std::string::npos);
    EXPECT_NE(line.find("\"lane\":"), std::string::npos);
    EXPECT_NE(line.find("\"total_us\":"), std::string::npos);
    if (line.find("\"outcome\":\"error\"") != std::string::npos) {
      ++error_lines;
    }
  }
  EXPECT_EQ(lines, completed);
  EXPECT_EQ(error_lines, 1u);

  server.Stop();
}

TEST_F(HttpServerTest, InflightGaugeAndCompletionCounters) {
  serving::Server server(options_);
  ASSERT_TRUE(server.Start());
  int port = server.http_port();

  obs::Registry& registry = obs::Registry::Global();
  uint64_t requests_before =
      registry.GetCounter("serving.requests").Value();
  ASSERT_TRUE(serving::HttpCall(port, "POST", "/v1/ping", "{}").has_value());
  ASSERT_TRUE(serving::HttpCall(port, "POST", "/v1/ping", "{}").has_value());
  // Counters are bumped at completion: after the responses arrived, the
  // counter moved by exactly the number of completed requests and the
  // inflight gauge is back to zero.
  EXPECT_EQ(registry.GetCounter("serving.requests").Value(),
            requests_before + 2u);
  EXPECT_EQ(registry.GetGauge("serving.inflight").Value(), 0.0);

  server.Stop();
}

}  // namespace
}  // namespace alcop
