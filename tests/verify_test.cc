// Tests of the static pipeline-synchronization verifier and its
// Diagnostic engine: a table of hand-built bad programs must each produce
// the documented diagnostic code, and every kernel the real compiler
// produces (lowered and pipeline-transformed, all Fig. 10 operators) must
// verify completely clean — the zero-false-positive requirement that makes
// the verifier usable as a self-check inside the passes.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "ir/parser.h"
#include "ir/stmt.h"
#include "sim/launch.h"
#include "support/check.h"
#include "target/gpu_spec.h"
#include "tuner/space.h"
#include "verify/diagnostic.h"
#include "verify/sync_mutator.h"
#include "verify/verifier.h"
#include "workloads/ops.h"

namespace alcop {
namespace {

using namespace alcop::ir;  // NOLINT(build/namespaces) - test IR building

BufferRegion Region(const Buffer& buffer, std::vector<Expr> offsets,
                    std::vector<int64_t> sizes) {
  BufferRegion region;
  region.buffer = buffer;
  region.offsets = std::move(offsets);
  region.sizes = std::move(sizes);
  return region;
}

Stmt AsyncCopy(BufferRegion dst, BufferRegion src, int group) {
  Stmt stmt = Copy(std::move(dst), std::move(src));
  auto node =
      std::make_shared<CopyNode>(*static_cast<const CopyNode*>(stmt.get()));
  node->is_async = true;
  node->pipeline_group = group;
  return node;
}

std::vector<std::string> Codes(const verify::VerifyResult& result) {
  std::vector<std::string> codes;
  for (const verify::Diagnostic& diag : result.diagnostics) {
    codes.push_back(diag.code);
  }
  return codes;
}

bool HasCode(const verify::VerifyResult& result, const std::string& code) {
  for (const verify::Diagnostic& diag : result.diagnostics) {
    if (diag.code == code) return true;
  }
  return false;
}

// ---- Diagnostic engine ----

TEST(DiagnosticTest, RenderIncludesCodePathSpanAndNotes) {
  verify::Diagnostic diag;
  diag.severity = verify::Severity::kError;
  diag.code = "V001";
  diag.message = "read before wait";
  diag.path = "for ko=2 / copy(A_reg)";
  diag.span = {12, 5};
  diag.notes.push_back("slot written by commit group 3");
  std::string text = diag.Render();
  EXPECT_NE(text.find("error[V001]"), std::string::npos) << text;
  EXPECT_NE(text.find("line 12:5"), std::string::npos) << text;
  EXPECT_NE(text.find("read before wait"), std::string::npos) << text;
  EXPECT_NE(text.find("at: for ko=2 / copy(A_reg)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("note: slot written by commit group 3"),
            std::string::npos)
      << text;
}

TEST(DiagnosticTest, EngineCountsSeverities) {
  verify::DiagnosticEngine engine;
  EXPECT_FALSE(engine.HasErrors());
  engine.Emit(verify::Severity::kWarning, "V005", "aliasing");
  EXPECT_FALSE(engine.HasErrors());
  engine.Emit(verify::Severity::kError, "V001", "race");
  EXPECT_TRUE(engine.HasErrors());
  EXPECT_EQ(engine.ErrorCount(), 1u);
  EXPECT_EQ(engine.diagnostics().size(), 2u);
  engine.Clear();
  EXPECT_FALSE(engine.HasErrors());
  EXPECT_TRUE(engine.diagnostics().empty());
}

// ---- Bad-program table: each row one documented code ----

struct Fixture {
  Buffer src = MakeBuffer("src", MemScope::kGlobal, {8, 8});
  Buffer buf = MakeBuffer("buf", MemScope::kShared, {2, 8});  // 2 stages
  Buffer out = MakeBuffer("out", MemScope::kGlobal, {8, 8});
};

// V001: async data read without any consumer_wait covering it.
TEST(VerifierTest, MissingWaitIsV001) {
  Fixture f;
  Stmt program = Block({
      Alloc(f.buf),
      Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
      AsyncCopy(Region(f.buf, {Int(0), Int(0)}, {1, 8}),
                Region(f.src, {Int(0), Int(0)}, {1, 8}), 0),
      Sync(SyncKind::kProducerCommit, 0, {f.buf}),
      Copy(Region(f.out, {Int(0), Int(0)}, {1, 8}),
           Region(f.buf, {Int(0), Int(0)}, {1, 8})),
  });
  verify::VerifyResult result = verify::VerifyProgram(program);
  EXPECT_TRUE(HasCode(result, "V001")) << result.Render();
  EXPECT_TRUE(result.HasSyncError());
}

// V002: third acquire on a two-stage FIFO with nothing released.
TEST(VerifierTest, AcquireOverflowIsV002) {
  Fixture f;
  std::vector<Stmt> seq = {Alloc(f.buf)};
  for (int i = 0; i < 3; ++i) {
    seq.push_back(Sync(SyncKind::kProducerAcquire, 0, {f.buf}));
    seq.push_back(AsyncCopy(Region(f.buf, {Int(i % 2), Int(0)}, {1, 8}),
                            Region(f.src, {Int(i), Int(0)}, {1, 8}), 0));
    seq.push_back(Sync(SyncKind::kProducerCommit, 0, {f.buf}));
  }
  verify::VerifyResult result = verify::VerifyProgram(Block(seq));
  EXPECT_TRUE(HasCode(result, "V002")) << result.Render();
  EXPECT_TRUE(result.HasSyncError());
}

// V003: wait on a group that was never committed.
TEST(VerifierTest, WaitBeforeCommitIsV003) {
  Fixture f;
  Stmt program = Block({
      Alloc(f.buf),
      Sync(SyncKind::kConsumerWait, 0, {f.buf}),
  });
  verify::VerifyResult result = verify::VerifyProgram(program);
  EXPECT_TRUE(HasCode(result, "V003")) << result.Render();
  EXPECT_TRUE(result.HasSyncError());
}

// V003 via wait_ahead: one group committed, but a wait_ahead=1 slack asks
// to leave one in flight — so the wait targets a group past the commits.
TEST(VerifierTest, ExcessWaitAheadIsV003) {
  Fixture f;
  Stmt program = Block({
      Alloc(f.buf),
      Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
      AsyncCopy(Region(f.buf, {Int(0), Int(0)}, {1, 8}),
                Region(f.src, {Int(0), Int(0)}, {1, 8}), 0),
      Sync(SyncKind::kProducerCommit, 0, {f.buf}),
      Sync(SyncKind::kConsumerWait, 0, {f.buf}, /*wait_ahead=*/1),
  });
  verify::VerifyResult result = verify::VerifyProgram(program);
  EXPECT_TRUE(HasCode(result, "V003")) << result.Render();
  // The same program with no slack is clean up to the missing release.
  Stmt ok = Block({
      Alloc(f.buf),
      Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
      AsyncCopy(Region(f.buf, {Int(0), Int(0)}, {1, 8}),
                Region(f.src, {Int(0), Int(0)}, {1, 8}), 0),
      Sync(SyncKind::kProducerCommit, 0, {f.buf}),
      Sync(SyncKind::kConsumerWait, 0, {f.buf}),
  });
  EXPECT_TRUE(verify::VerifyProgram(ok).Clean());
}

// V004: more releases than commits.
TEST(VerifierTest, ReleaseBeyondCommitIsV004) {
  Fixture f;
  Stmt program = Block({
      Alloc(f.buf),
      Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
      AsyncCopy(Region(f.buf, {Int(0), Int(0)}, {1, 8}),
                Region(f.src, {Int(0), Int(0)}, {1, 8}), 0),
      Sync(SyncKind::kProducerCommit, 0, {f.buf}),
      Sync(SyncKind::kConsumerWait, 0, {f.buf}),
      Sync(SyncKind::kConsumerRelease, 0, {f.buf}),
      Sync(SyncKind::kConsumerRelease, 0, {f.buf}),
  });
  verify::VerifyResult result = verify::VerifyProgram(program);
  EXPECT_TRUE(HasCode(result, "V004")) << result.Render();
  EXPECT_TRUE(result.HasSyncError());
}

// The rolling-index bug of Sec. III-B: a fused inner pipeline must rotate
// its slot by the *global* iteration count ((ko*extent_ki + ki) % stages),
// not the inner one (ki % stages). With an odd inner extent the two
// disagree, two live commit groups land in one slot (V005), and the
// consumer then reads data its wait never promoted (V001).
Stmt RollingIndexPipeline(const Fixture& f, bool buggy) {
  // Software pipeline of depth 1 over six flat iterations, written with
  // the flat index i: the inner extent is 3, so the buggy slot index is
  // (i % 3) % 2 while the correct one is i % 2.
  auto slot = [&](Expr flat) {
    return buggy ? FloorMod(FloorMod(flat, 3), 2) : FloorMod(flat, 2);
  };
  Var i = MakeVar("i");
  std::vector<Stmt> seq = {
      Alloc(f.buf),
      // Prologue: load flat iteration 0.
      Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
      AsyncCopy(Region(f.buf, {slot(Int(0)), Int(0)}, {1, 8}),
                Region(f.src, {Int(0), Int(0)}, {1, 8}), 0),
      Sync(SyncKind::kProducerCommit, 0, {f.buf}),
      // Steady state: load iteration i+1, consume iteration i.
      For(i, 5, ForKind::kSerial,
          Block({
              Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
              AsyncCopy(Region(f.buf, {slot(Add(i, 1)), Int(0)}, {1, 8}),
                        Region(f.src, {FloorMod(Add(i, 1), 8), Int(0)},
                               {1, 8}),
                        0),
              Sync(SyncKind::kProducerCommit, 0, {f.buf}),
              Sync(SyncKind::kConsumerWait, 0, {f.buf}),
              Copy(Region(f.out, {FloorMod(i, 8), Int(0)}, {1, 8}),
                   Region(f.buf, {slot(i), Int(0)}, {1, 8})),
              Sync(SyncKind::kConsumerRelease, 0, {f.buf}),
          })),
      // Epilogue: consume flat iteration 5.
      Sync(SyncKind::kConsumerWait, 0, {f.buf}),
      Copy(Region(f.out, {Int(5), Int(0)}, {1, 8}),
           Region(f.buf, {slot(Int(5)), Int(0)}, {1, 8})),
      Sync(SyncKind::kConsumerRelease, 0, {f.buf}),
  };
  return Block(std::move(seq));
}

TEST(VerifierTest, InnerRollingIndexBugIsV005AndV001) {
  Fixture f;
  verify::VerifyResult bad = verify::VerifyProgram(RollingIndexPipeline(f, true));
  EXPECT_TRUE(HasCode(bad, "V005")) << bad.Render();
  EXPECT_TRUE(HasCode(bad, "V001")) << bad.Render();
}

TEST(VerifierTest, GlobalRollingIndexIsClean) {
  Fixture f;
  verify::VerifyResult good =
      verify::VerifyProgram(RollingIndexPipeline(f, false));
  EXPECT_TRUE(good.Clean()) << good.Render();
}

// V006: copy region exceeding the buffer's extents.
TEST(VerifierTest, OutOfBoundsCopyIsV006) {
  Fixture f;
  Stmt program = Block({
      Alloc(f.buf),
      Copy(Region(f.buf, {Int(1), Int(0)}, {2, 8}),  // rows 1..2 of a [2,8]
           Region(f.src, {Int(0), Int(0)}, {2, 8})),
  });
  verify::VerifyResult result = verify::VerifyProgram(program);
  EXPECT_TRUE(HasCode(result, "V006")) << result.Render();
  // Bounds checking can be disabled.
  verify::VerifyOptions options;
  options.check_bounds = false;
  EXPECT_TRUE(verify::VerifyProgram(program, options).Clean());
}

// V006 at a parallel-loop corner: the offset is in bounds for warp 0 but
// not for the last warp, which only corner enumeration catches.
TEST(VerifierTest, OutOfBoundsAtParallelCornerIsV006) {
  Fixture f;
  Var w = MakeVar("w");
  Stmt program = Block({
      Alloc(f.buf),
      For(w, 4, ForKind::kWarp,
          Copy(Region(f.buf, {Int(0), Mul(w, 3)}, {1, 2}),  // w=3: cols 9..10
               Region(f.src, {Int(0), Mul(w, 2)}, {1, 2}))),
  });
  verify::VerifyResult result = verify::VerifyProgram(program);
  EXPECT_TRUE(HasCode(result, "V006")) << result.Render();
}

// V007: a plain Global -> Register copy skips the shared-memory staging
// the memory hierarchy requires.
TEST(VerifierTest, GlobalToRegisterCopyIsV007) {
  Fixture f;
  Buffer reg = MakeBuffer("reg", MemScope::kRegister, {2, 8});
  Stmt program = Block({
      Alloc(reg),
      Copy(Region(reg, {Int(0), Int(0)}, {1, 8}),
           Region(f.src, {Int(0), Int(0)}, {1, 8})),
  });
  verify::VerifyResult result = verify::VerifyProgram(program);
  EXPECT_TRUE(HasCode(result, "V007")) << result.Render();
}

// V008: a threadblock barrier inside a divergent warp loop deadlocks.
TEST(VerifierTest, BarrierInWarpLoopIsV008) {
  Var w = MakeVar("w");
  Stmt program = Block({
      For(w, 4, ForKind::kWarp, Block({Barrier()})),
  });
  verify::VerifyResult result = verify::VerifyProgram(program);
  EXPECT_TRUE(HasCode(result, "V008")) << result.Render();
}

// V009: malformed IR — an offset referencing a variable no loop binds.
TEST(VerifierTest, UnboundVariableIsV009) {
  Fixture f;
  Var ghost = MakeVar("ghost");
  Stmt program = Block({
      Alloc(f.buf),
      Copy(Region(f.buf, {ghost, Int(0)}, {1, 8}),
           Region(f.src, {Int(0), Int(0)}, {1, 8})),
  });
  verify::VerifyResult result = verify::VerifyProgram(program);
  EXPECT_TRUE(HasCode(result, "V009")) << result.Render();
}

// A fully synchronized single-group pipeline is clean, and diagnostics are
// deduplicated per statement across loop iterations.
TEST(VerifierTest, CleanPipelineAndLoopDeduplication) {
  Fixture f;
  Var ko = MakeVar("ko");
  Stmt clean = Block({
      Alloc(f.buf),
      For(ko, 4, ForKind::kSerial,
          Block({
              Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
              AsyncCopy(Region(f.buf, {FloorMod(ko, 2), Int(0)}, {1, 8}),
                        Region(f.src, {FloorMod(ko, 8), Int(0)}, {1, 8}), 0),
              Sync(SyncKind::kProducerCommit, 0, {f.buf}),
              Sync(SyncKind::kConsumerWait, 0, {f.buf}),
              Copy(Region(f.out, {FloorMod(ko, 8), Int(0)}, {1, 8}),
                   Region(f.buf, {FloorMod(ko, 2), Int(0)}, {1, 8})),
              Sync(SyncKind::kConsumerRelease, 0, {f.buf}),
          })),
  });
  EXPECT_TRUE(verify::VerifyProgram(clean).Clean());

  // Drop the wait: the read races on every one of the four iterations, but
  // the report carries a single V001 for the copy statement.
  Stmt racy = Block({
      Alloc(f.buf),
      For(ko, 4, ForKind::kSerial,
          Block({
              Sync(SyncKind::kProducerAcquire, 0, {f.buf}),
              AsyncCopy(Region(f.buf, {FloorMod(ko, 2), Int(0)}, {1, 8}),
                        Region(f.src, {FloorMod(ko, 8), Int(0)}, {1, 8}), 0),
              Sync(SyncKind::kProducerCommit, 0, {f.buf}),
              Copy(Region(f.out, {FloorMod(ko, 8), Int(0)}, {1, 8}),
                   Region(f.buf, {FloorMod(ko, 2), Int(0)}, {1, 8})),
              Sync(SyncKind::kConsumerRelease, 0, {f.buf}),
          })),
  });
  verify::VerifyResult result = verify::VerifyProgram(racy);
  size_t v001 = 0;
  for (const std::string& code : Codes(result)) v001 += code == "V001";
  EXPECT_EQ(v001, 1u) << result.Render();
}

// ---- Zero false positives on the real compiler's output ----

class CompiledCleanTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CompiledCleanTest, LoweredAndTransformedVerifyClean) {
  const schedule::GemmOp& op = workloads::BenchmarkOps()[GetParam()];
  target::GpuSpec spec = target::AmpereSpec();
  std::vector<schedule::ScheduleConfig> space = tuner::EnumerateSpace(op);
  ASSERT_FALSE(space.empty()) << op.name;
  // Prefer a deep-pipeline schedule so the verifier sees multi-stage FIFOs
  // and fused inner pipelines, not the degenerate single-stage case.
  schedule::ScheduleConfig config = space.front();
  for (const schedule::ScheduleConfig& candidate : space) {
    if (candidate.smem_stages >= 3 && candidate.reg_stages >= 2) {
      config = candidate;
      break;
    }
  }
  sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);

  verify::VerifyResult lowered = verify::VerifyProgram(compiled.kernel.stmt);
  EXPECT_TRUE(lowered.Clean()) << op.name << "\n" << lowered.Render();
  verify::VerifyResult transformed =
      verify::VerifyProgram(compiled.transformed.stmt);
  EXPECT_TRUE(transformed.Clean()) << op.name << "\n" << transformed.Render();
  EXPECT_FALSE(transformed.reached_step_limit) << op.name;
}

INSTANTIATE_TEST_SUITE_P(
    Fig10, CompiledCleanTest,
    ::testing::Range<size_t>(0, 12),
    [](const ::testing::TestParamInfo<size_t>& info) {
      return workloads::BenchmarkOps()[info.param].name;
    });

// ---- Sync-site enumeration and mutation ----

TEST(SyncMutatorTest, ListsAndMutatesCompiledKernelSites) {
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op = schedule::MakeMatmul("mut", 64, 64, 96);
  schedule::ScheduleConfig config;
  config.tile = {.tb_m = 64, .tb_n = 64, .tb_k = 32,
                 .warp_m = 32, .warp_n = 32, .warp_k = 16};
  config.smem_stages = 3;
  config.reg_stages = 2;
  sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);

  std::vector<verify::SyncSite> sites =
      verify::ListSyncSites(compiled.transformed.stmt);
  ASSERT_GT(sites.size(), 4u);
  std::set<std::string> kinds;
  for (const verify::SyncSite& site : sites) {
    EXPECT_FALSE(site.label.empty());
    kinds.insert(ir::SyncKindName(site.stmt->sync_kind));
  }
  EXPECT_EQ(kinds.size(), 4u) << "all four primitives appear";

  // Dropping a site removes exactly one sync statement.
  ir::Stmt dropped = verify::MutateSyncSite(compiled.transformed.stmt, 0,
                                            verify::SyncMutation::kDrop);
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(verify::ListSyncSites(dropped).size(), sites.size() - 1);

  // Duplicating adds exactly one.
  ir::Stmt doubled = verify::MutateSyncSite(compiled.transformed.stmt, 0,
                                            verify::SyncMutation::kDuplicate);
  ASSERT_NE(doubled, nullptr);
  EXPECT_EQ(verify::ListSyncSites(doubled).size(), sites.size() + 1);
}

// ---- Textual round trip: parse, verify, same verdict ----

TEST(VerifierTest, ParsedProgramCarriesSpansIntoDiagnostics) {
  const char* text =
      "alloc src: global fp16[4, 8]\n"
      "alloc buf: shared fp16[2, 8]\n"
      "alloc out: global fp16[4, 8]\n"
      "buf.producer_acquire  @group0\n"
      "copy.async buf[0, 0][1, 8] <- src[0, 0][1, 8]  @group0\n"
      "buf.producer_commit  @group0\n"
      "copy out[0, 0][1, 8] <- buf[0, 0][1, 8]\n";
  ir::Stmt program = ir::ParseStmt(text);
  verify::VerifyResult result = verify::VerifyProgram(program);
  ASSERT_TRUE(HasCode(result, "V001")) << result.Render();
  for (const verify::Diagnostic& diag : result.diagnostics) {
    if (diag.code != "V001") continue;
    EXPECT_EQ(diag.span.line, 7) << result.Render();
    EXPECT_TRUE(diag.span.IsKnown());
  }
}

}  // namespace
}  // namespace alcop
