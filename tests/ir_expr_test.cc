// Unit tests for the index-expression IR: construction, evaluation,
// substitution, variable collection and the simplifier.
#include <gtest/gtest.h>

#include <cstdint>

#include "ir/expr.h"
#include "ir/printer.h"
#include "ir/simplify.h"
#include "support/check.h"

namespace alcop {
namespace ir {
namespace {

TEST(ExprTest, IntImmRoundTrip) {
  Expr e = Int(42);
  int64_t v = 0;
  ASSERT_TRUE(AsConst(e, &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(IsConst(e, 42));
  EXPECT_FALSE(IsConst(e, 41));
}

TEST(ExprTest, VarIdentityIsPointerBased) {
  Var a = MakeVar("i");
  Var b = MakeVar("i");
  EXPECT_TRUE(UsesVar(a, a));
  EXPECT_FALSE(UsesVar(a, b)) << "same-named vars must be distinct";
}

TEST(ExprTest, EvaluateArithmetic) {
  Var i = MakeVar("i");
  Var j = MakeVar("j");
  Expr e = Add(Mul(i, 8), FloorMod(j, 3));
  int64_t value = Evaluate(e, {{i.get(), 5}, {j.get(), 7}});
  EXPECT_EQ(value, 5 * 8 + 7 % 3);
}

TEST(ExprTest, EvaluateFloorSemanticsOnNegatives) {
  Var i = MakeVar("i");
  EXPECT_EQ(Evaluate(FloorDiv(i, 4), {{i.get(), -1}}), -1);
  EXPECT_EQ(Evaluate(FloorMod(i, 4), {{i.get(), -1}}), 3);
  EXPECT_EQ(Evaluate(FloorDiv(i, 4), {{i.get(), -8}}), -2);
  EXPECT_EQ(Evaluate(FloorMod(i, 4), {{i.get(), -8}}), 0);
}

TEST(ExprTest, EvaluateMinMaxAndComparisons) {
  Var i = MakeVar("i");
  std::vector<VarBinding> env = {{i.get(), 10}};
  EXPECT_EQ(Evaluate(Min(i, Int(3)), env), 3);
  EXPECT_EQ(Evaluate(Max(i, Int(3)), env), 10);
  EXPECT_EQ(Evaluate(Binary(ExprKind::kLT, i, Int(11)), env), 1);
  EXPECT_EQ(Evaluate(Binary(ExprKind::kGE, i, Int(11)), env), 0);
  EXPECT_EQ(Evaluate(Binary(ExprKind::kEQ, i, Int(10)), env), 1);
}

TEST(ExprTest, EvaluateUnboundVariableThrows) {
  Var i = MakeVar("i");
  EXPECT_THROW(Evaluate(i, {}), CheckError);
}

TEST(ExprTest, EvaluateDivisionByZeroThrows) {
  Var i = MakeVar("i");
  EXPECT_THROW(Evaluate(FloorDiv(Int(1), Int(0)), {}), CheckError);
  EXPECT_THROW(Evaluate(FloorMod(i, Int(0)), {{i.get(), 3}}), CheckError);
}

TEST(ExprTest, SubstituteReplacesOnlyTargetVar) {
  Var i = MakeVar("i");
  Var j = MakeVar("j");
  Expr e = Add(i, Mul(j, 2));
  Expr out = Substitute(e, i, Int(7));
  EXPECT_EQ(Evaluate(out, {{j.get(), 3}}), 7 + 6);
  // j untouched
  EXPECT_TRUE(UsesVar(out, j));
  EXPECT_FALSE(UsesVar(out, i));
}

TEST(ExprTest, SubstitutePreservesSharingWhenUnchanged) {
  Var i = MakeVar("i");
  Var other = MakeVar("x");
  Expr e = Add(i, Int(1));
  Expr out = Substitute(e, other, Int(0));
  EXPECT_EQ(e.get(), out.get());
}

TEST(ExprTest, CollectVarsDeduplicates) {
  Var i = MakeVar("i");
  Var j = MakeVar("j");
  Expr e = Add(Add(i, j), Mul(i, 4));
  std::vector<Var> vars = CollectVars(e);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0].get(), i.get());
  EXPECT_EQ(vars[1].get(), j.get());
}

TEST(SimplifyTest, ConstantFolding) {
  Expr e = Add(Mul(Int(3), Int(4)), FloorMod(Int(10), Int(3)));
  Expr s = Simplify(e);
  EXPECT_TRUE(IsConst(s, 13));
}

TEST(SimplifyTest, Identities) {
  Var i = MakeVar("i");
  EXPECT_EQ(Simplify(Add(i, Int(0))).get(), i.get());
  EXPECT_EQ(Simplify(Mul(i, Int(1))).get(), i.get());
  EXPECT_TRUE(IsConst(Simplify(Mul(i, Int(0))), 0));
  EXPECT_TRUE(IsConst(Simplify(FloorMod(i, Int(1))), 0));
  EXPECT_EQ(Simplify(FloorDiv(i, Int(1))).get(), i.get());
}

TEST(SimplifyTest, ReassociatesAddedConstants) {
  Var i = MakeVar("i");
  Expr e = Add(Add(i, Int(2)), Int(3));
  Expr s = Simplify(e);
  EXPECT_EQ(ToString(s), "i + 5");
}

TEST(SimplifyTest, NestedModByModSameDivisor) {
  Var i = MakeVar("i");
  Expr e = FloorMod(FloorMod(i, Int(3)), Int(3));
  EXPECT_EQ(ToString(Simplify(e)), "i % 3");
}

TEST(SimplifyTest, BooleanShortCircuits) {
  Var i = MakeVar("i");
  Expr cond = Binary(ExprKind::kLT, i, Int(4));
  EXPECT_EQ(Simplify(Binary(ExprKind::kAnd, Int(1), cond)).get(), cond.get());
  EXPECT_TRUE(IsConst(Simplify(Binary(ExprKind::kAnd, Int(0), cond)), 0));
  EXPECT_TRUE(IsConst(Simplify(Binary(ExprKind::kOr, Int(1), cond)), 1));
  EXPECT_EQ(Simplify(Binary(ExprKind::kOr, Int(0), cond)).get(), cond.get());
}

TEST(PrinterTest, ExprPrecedence) {
  Var i = MakeVar("i");
  Var j = MakeVar("j");
  EXPECT_EQ(ToString(Add(Mul(i, 2), j)), "i * 2 + j");
  EXPECT_EQ(ToString(Mul(Add(i, Int(2)), Int(3))), "(i + 2) * 3");
  EXPECT_EQ(ToString(FloorMod(Add(i, Int(2)), Int(3))), "(i + 2) % 3");
  EXPECT_EQ(ToString(Min(i, j)), "min(i, j)");
}

// Property sweep: the simplifier must be value-preserving for a grid of
// variable assignments over a family of random-ish expressions.
class SimplifyValuePreservation : public ::testing::TestWithParam<int> {};

TEST_P(SimplifyValuePreservation, SameValueAsOriginal) {
  int seed = GetParam();
  Var i = MakeVar("i");
  Var j = MakeVar("j");
  // A deterministic "random" expression per seed built from a fixed menu.
  // The LCG state is unsigned so the wraparound is well-defined.
  Expr e = i;
  uint32_t state = static_cast<uint32_t>(seed);
  for (int step = 0; step < 6; ++step) {
    state = state * 1103515245u + 12345u;
    int pick = (state >> 16) & 7;
    int64_t c = 1 + ((state >> 8) & 3);
    switch (pick) {
      case 0: e = Add(e, j); break;
      case 1: e = Sub(e, Int(c)); break;
      case 2: e = Mul(e, c); break;
      case 3: e = FloorDiv(e, c); break;
      case 4: e = FloorMod(e, c); break;
      case 5: e = Min(e, Mul(j, c)); break;
      case 6: e = Max(e, Int(c)); break;
      default: e = Add(e, Int(0)); break;
    }
  }
  Expr s = Simplify(e);
  for (int64_t vi = 0; vi < 7; ++vi) {
    for (int64_t vj = 0; vj < 7; ++vj) {
      std::vector<VarBinding> env = {{i.get(), vi}, {j.get(), vj}};
      EXPECT_EQ(Evaluate(e, env), Evaluate(s, env))
          << "seed=" << seed << " i=" << vi << " j=" << vj
          << " expr=" << ToString(e) << " simplified=" << ToString(s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyValuePreservation,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace ir
}  // namespace alcop
