// Structure-sharing skeleton layer: the intern pool must deduplicate the
// structural half of compiled programs across a schedule space, the
// arena's layout-reuse tag must never leak state between programs (every
// replay bit-identical to a fresh-arena replay, in any interleaving), and
// ReplaySimProgramBatch must equal per-program replays in input order.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "sim/compile.h"
#include "sim/desim.h"
#include "sim/launch.h"
#include "sim/sim_cache.h"
#include "target/gpu_spec.h"
#include "tuner/strategy.h"
#include "workloads/ops.h"

namespace alcop {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

::testing::AssertionResult SameTiming(const sim::KernelTiming& a,
                                      const sim::KernelTiming& b) {
  if (a.feasible != b.feasible || a.reason != b.reason) {
    return ::testing::AssertionFailure() << "feasibility differs";
  }
  if (!BitEqual(a.cycles, b.cycles) ||
      !BitEqual(a.microseconds, b.microseconds) ||
      !BitEqual(a.tflops, b.tflops) ||
      !BitEqual(a.batch_cycles, b.batch_cycles) || a.batches != b.batches ||
      a.threadblocks_per_sm != b.threadblocks_per_sm) {
    return ::testing::AssertionFailure()
           << "timing differs: " << a.cycles << " vs " << b.cycles;
  }
  return ::testing::AssertionSuccess();
}

// Feasible programs of one operator's (strided) space, shared from the
// program cache.
std::vector<std::shared_ptr<const sim::SimProgram>> FeasiblePrograms(
    const std::string& op_name, const target::GpuSpec& spec, size_t stride,
    size_t limit) {
  const schedule::GemmOp& op = workloads::FindOp(op_name);
  tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
  std::vector<std::shared_ptr<const sim::SimProgram>> programs;
  for (size_t c = 0; c < task.space.size() && programs.size() < limit;
       c += stride) {
    auto program = sim::CachedSimProgram(op, task.space[c], spec);
    if (program->feasible) programs.push_back(std::move(program));
  }
  return programs;
}

TEST(SkeletonPool, DeduplicatesAcrossScheduleSpace) {
  sim::ResetSimCache();
  target::GpuSpec spec = target::AmpereSpec();
  auto programs = FeasiblePrograms("MM_RN50_FC", spec, 4, 200);
  ASSERT_GT(programs.size(), 10u);

  // Schedules differing only numerically share one skeleton object.
  sim::SkeletonPoolStats pool = sim::GetSkeletonPoolStats();
  EXPECT_GT(pool.interns, 0u);
  EXPECT_GT(pool.shared, 0u) << "no structure sharing across the space";
  EXPECT_LT(pool.skeletons, pool.interns);

  // The cache's per-config footprint counts each distinct skeleton once.
  sim::SimCacheStats stats = sim::GetSimCacheStats();
  EXPECT_GT(stats.program_entries, stats.program_skeletons);
  EXPECT_GT(stats.skeleton_bytes, 0u);
  EXPECT_GT(stats.program_bytes_unshared,
            stats.program_bytes + stats.skeleton_bytes);

  // Every feasible program holds a pooled skeleton.
  for (const auto& program : programs) {
    ASSERT_NE(program->program.skeleton, nullptr);
  }
}

TEST(SkeletonPool, InternReturnsExistingEqualSkeleton) {
  sim::ResetSimCache();
  target::GpuSpec spec = target::AmpereSpec();
  auto programs = FeasiblePrograms("MM_RN50_FC", spec, 16, 4);
  ASSERT_FALSE(programs.empty());
  std::shared_ptr<const sim::MicroOpSkeleton> skeleton =
      programs[0]->program.skeleton;

  // A field-for-field copy interns to the same object, not a new one.
  sim::MicroOpSkeleton copy = *skeleton;
  EXPECT_EQ(sim::SkeletonHash(copy), skeleton->hash);
  auto interned = sim::InternSkeleton(std::move(copy));
  EXPECT_EQ(interned.get(), skeleton.get());

  // A structural change (different warp count) makes a distinct entry.
  sim::MicroOpSkeleton changed = *skeleton;
  changed.num_warps += 1;
  changed.hash = sim::SkeletonHash(changed);
  EXPECT_NE(changed.hash, skeleton->hash);
  auto other = sim::InternSkeleton(std::move(changed));
  EXPECT_NE(other.get(), skeleton.get());
}

TEST(SkeletonReplay, LayoutReuseBitExactUnderInterleaving) {
  sim::ResetSimCache();
  target::GpuSpec spec = target::AmpereSpec();
  // Two operators -> a mix of skeletons and wave sizes.
  auto programs = FeasiblePrograms("MM_RN50_FC", spec, 8, 40);
  auto more = FeasiblePrograms("BMM_BERT_QK", spec, 8, 40);
  programs.insert(programs.end(), more.begin(), more.end());
  ASSERT_GT(programs.size(), 20u);

  // Ground truth: every program through its own fresh arena.
  std::vector<sim::KernelTiming> fresh;
  for (const auto& program : programs) {
    sim::ReplayArena arena;
    fresh.push_back(sim::ReplaySimProgram(*program, &arena));
  }

  // One shared arena, adversarial interleaving: forward, backward, and
  // alternating ends — every transition exercises the layout-reuse tag
  // (same skeleton back-to-back reuses tables; any change refills them).
  sim::ReplayArena shared;
  std::vector<size_t> order;
  for (size_t i = 0; i < programs.size(); ++i) order.push_back(i);
  for (size_t i = programs.size(); i > 0; --i) order.push_back(i - 1);
  for (size_t i = 0; i < programs.size(); ++i) {
    order.push_back(i % 2 == 0 ? i / 2 : programs.size() - 1 - i / 2);
  }
  for (size_t idx : order) {
    sim::KernelTiming replay = sim::ReplaySimProgram(*programs[idx], &shared);
    EXPECT_TRUE(SameTiming(fresh[idx], replay)) << "program " << idx;
  }
}

TEST(SkeletonReplay, BatchedReplayMatchesSingleInInputOrder) {
  sim::ResetSimCache();
  target::GpuSpec spec = target::AmpereSpec();
  auto programs = FeasiblePrograms("MM_BERT_QKV", spec, 16, 60);
  ASSERT_GT(programs.size(), 5u);
  std::vector<const sim::SimProgram*> ptrs;
  for (const auto& p : programs) ptrs.push_back(p.get());

  std::vector<sim::KernelTiming> single;
  sim::ReplayArena arena_single;
  for (const sim::SimProgram* p : ptrs) {
    single.push_back(sim::ReplaySimProgram(*p, &arena_single));
  }

  sim::ReplayArena arena_batch;
  std::vector<sim::KernelTiming> batched =
      sim::ReplaySimProgramBatch(ptrs, &arena_batch);
  ASSERT_EQ(batched.size(), single.size());
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_TRUE(SameTiming(single[i], batched[i])) << "program " << i;
  }

  // Warm batched replay performs no allocation: capacity is stable across
  // a second pass over the same programs.
  size_t capacity = arena_batch.CapacityBytes();
  std::vector<sim::KernelTiming> again =
      sim::ReplaySimProgramBatch(ptrs, &arena_batch);
  EXPECT_EQ(arena_batch.CapacityBytes(), capacity);
  for (size_t i = 0; i < single.size(); ++i) {
    EXPECT_TRUE(SameTiming(batched[i], again[i])) << "program " << i;
  }
}

TEST(SkeletonPool, ResetSimCacheResetsPoolStats) {
  target::GpuSpec spec = target::AmpereSpec();
  auto programs = FeasiblePrograms("MM_RN50_FC", spec, 64, 4);
  ASSERT_FALSE(programs.empty());
  EXPECT_GT(sim::GetSkeletonPoolStats().interns, 0u);
  sim::ResetSimCache();
  sim::SkeletonPoolStats pool = sim::GetSkeletonPoolStats();
  EXPECT_EQ(pool.skeletons, 0u);
  EXPECT_EQ(pool.interns, 0u);
  // Held programs stay valid after the reset (their shared_ptrs keep the
  // skeletons alive).
  sim::ReplayArena arena;
  sim::KernelTiming timing = sim::ReplaySimProgram(*programs[0], &arena);
  EXPECT_TRUE(timing.feasible);
}

}  // namespace
}  // namespace alcop
