// Tests of the tuning stack: space enumeration, feature extraction, the
// gradient-boosted-tree model, the simulated-annealing proposer, and the
// four search strategies' relative quality (Table II / Fig. 13 behavior).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/metrics.h"
#include "schedule/tensor.h"
#include "sim/sim_cache.h"
#include "support/check.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "target/gpu_spec.h"
#include "tuner/anneal.h"
#include "tuner/feature.h"
#include "tuner/gbt.h"
#include "tuner/space.h"
#include "tuner/strategy.h"

namespace alcop {
namespace {

using schedule::GemmOp;
using schedule::MakeMatmul;
using schedule::ScheduleConfig;

// ---- Space ----

TEST(SpaceTest, AllEnumeratedConfigsAreValid) {
  GemmOp op = MakeMatmul("mm", 512, 512, 512);
  std::vector<ScheduleConfig> space = tuner::EnumerateSpace(op);
  ASSERT_FALSE(space.empty());
  for (const ScheduleConfig& config : space) {
    EXPECT_TRUE(schedule::ValidateConfig(op, config)) << config.ToString();
  }
}

TEST(SpaceTest, RespectsShapeDivisibility) {
  // N = 64 rules out tb_n in {128, 256}.
  GemmOp op = MakeMatmul("mm", 1024, 64, 2048);
  for (const ScheduleConfig& config : tuner::EnumerateSpace(op)) {
    EXPECT_LE(config.tile.tb_n, 64);
  }
}

TEST(SpaceTest, VariantSpacesAreSubsets) {
  GemmOp op = MakeMatmul("mm", 512, 512, 512);
  size_t full = tuner::EnumerateSpace(op).size();
  size_t tvm = tuner::EnumerateSpace(op, tuner::SpaceOptions::NoPipelining()).size();
  size_t shared_only =
      tuner::EnumerateSpace(op, tuner::SpaceOptions::SharedPipeliningOnly()).size();
  EXPECT_LT(tvm, shared_only);
  EXPECT_LT(shared_only, full);
}

TEST(SpaceTest, DeterministicOrder) {
  GemmOp op = MakeMatmul("mm", 512, 512, 512);
  std::vector<ScheduleConfig> a = tuner::EnumerateSpace(op);
  std::vector<ScheduleConfig> b = tuner::EnumerateSpace(op);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToString(), b[i].ToString());
  }
}

// ---- Features ----

TEST(FeatureTest, FixedLengthAndFinite) {
  GemmOp op = MakeMatmul("mm", 512, 512, 512);
  target::GpuSpec spec = target::AmpereSpec();
  for (const ScheduleConfig& config : tuner::EnumerateSpace(op)) {
    std::vector<double> f = tuner::ExtractFeatures(op, config, spec);
    ASSERT_EQ(static_cast<int>(f.size()), tuner::kNumFeatures);
    for (double v : f) EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(static_cast<int>(tuner::FeatureNames().size()),
            tuner::kNumFeatures);
}

TEST(FeatureTest, DistinguishesStageCounts) {
  GemmOp op = MakeMatmul("mm", 512, 512, 512);
  target::GpuSpec spec = target::AmpereSpec();
  ScheduleConfig a, b;
  a.smem_stages = 1;
  b.smem_stages = 4;
  EXPECT_NE(tuner::ExtractFeatures(op, a, spec),
            tuner::ExtractFeatures(op, b, spec));
}

// ---- GBT ----

TEST(GbtTest, FitsSimpleFunction) {
  // y = 3*x0 - 2*x1 on a grid; the ensemble should reach low error.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      x.push_back({static_cast<double>(i), static_cast<double>(j)});
      y.push_back(3.0 * i - 2.0 * j);
    }
  }
  tuner::GbtModel model;
  model.Fit(x, y);
  double max_err = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    max_err = std::max(max_err, std::abs(model.Predict(x[i]) - y[i]));
  }
  EXPECT_LT(max_err, 6.0);  // range of y is 95
}

TEST(GbtTest, FitsNonlinearInteraction) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    double a = rng.Uniform(0, 4), b = rng.Uniform(0, 4);
    x.push_back({a, b});
    y.push_back((a > 2 && b > 2) ? 10.0 : 0.0);
  }
  tuner::GbtModel model;
  model.Fit(x, y);
  EXPECT_GT(model.Predict({3.5, 3.5}), 7.0);
  EXPECT_LT(model.Predict({0.5, 0.5}), 3.0);
}

TEST(GbtTest, WeightsBiasTheFit) {
  // Two clusters with conflicting labels; heavy weights must win.
  std::vector<std::vector<double>> x = {{0.0}, {0.0}, {1.0}, {1.0}};
  std::vector<double> y = {0.0, 10.0, 0.0, 10.0};
  tuner::GbtModel model;
  model.Fit(x, y, {100.0, 1.0, 1.0, 100.0});
  EXPECT_LT(model.Predict({0.0}), 3.0);
  EXPECT_GT(model.Predict({1.0}), 7.0);
}

TEST(GbtTest, PredictBeforeFitThrows) {
  tuner::GbtModel model;
  EXPECT_FALSE(model.IsFitted());
  EXPECT_THROW(model.Predict({1.0}), CheckError);
}

TEST(GbtTest, EmptyFitThrows) {
  tuner::GbtModel model;
  EXPECT_THROW(model.Fit({}, {}), CheckError);
}

// ---- Annealing ----

TEST(AnnealTest, NeighborRelationIsSingleKnob) {
  ScheduleConfig a;
  ScheduleConfig b = a;
  EXPECT_FALSE(tuner::AreNeighbors(a, b));  // identical
  b.smem_stages = 3;
  EXPECT_TRUE(tuner::AreNeighbors(a, b));
  b.reg_stages = 2;
  EXPECT_FALSE(tuner::AreNeighbors(a, b));  // two knobs differ
}

TEST(AnnealTest, FindsHighScoringConfigs) {
  GemmOp op = MakeMatmul("mm", 512, 512, 512);
  std::vector<ScheduleConfig> space = tuner::EnumerateSpace(op);
  // Score favors deep pipelines on big tiles.
  auto score = [&space](size_t i) {
    return static_cast<double>(space[i].smem_stages * space[i].tile.tb_m);
  };
  Rng rng(1);
  std::vector<size_t> batch = tuner::ProposeBatch(space, score, {}, 5, rng);
  ASSERT_EQ(batch.size(), 5u);
  double best_possible = 0.0;
  for (size_t i = 0; i < space.size(); ++i) {
    best_possible = std::max(best_possible, score(i));
  }
  EXPECT_GE(score(batch[0]), 0.9 * best_possible);
}

TEST(AnnealTest, ExcludesMeasuredConfigs) {
  GemmOp op = MakeMatmul("mm", 256, 256, 256);
  std::vector<ScheduleConfig> space = tuner::EnumerateSpace(op);
  std::unordered_set<size_t> exclude;
  for (size_t i = 0; i < space.size() / 2; ++i) exclude.insert(i);
  auto score = [](size_t) { return 1.0; };
  Rng rng(2);
  std::vector<size_t> batch =
      tuner::ProposeBatch(space, score, exclude, 10, rng);
  for (size_t index : batch) {
    EXPECT_EQ(exclude.count(index), 0u);
  }
  // No duplicates.
  std::set<size_t> unique(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), batch.size());
}

// ---- Strategies ----

// A synthetic task with a known measurement function, so strategy tests do
// not depend on simulator runtime.
tuner::TuningTask SyntheticTask() {
  tuner::TuningTask task;
  task.op = MakeMatmul("mm", 1024, 256, 2048);
  task.spec = target::AmpereSpec();
  task.space = tuner::EnumerateSpace(task.op);
  task.measure = [&task](const ScheduleConfig& config) {
    // A smooth landscape with a known optimum at deep pipelines, large-ish
    // tiles; analytical-model-like shape.
    double cycles = 1e6;
    cycles /= static_cast<double>(config.tile.tb_m) / 64.0;
    cycles /= static_cast<double>(config.tile.tb_n) / 64.0;
    cycles *= 1.0 + 0.5 / config.smem_stages;
    cycles *= 1.0 + 0.2 / config.reg_stages;
    return cycles;
  };
  return task;
}

TEST(StrategyTest, ExhaustiveFindsTheTrueOptimum) {
  tuner::TuningTask task = SyntheticTask();
  tuner::TuningResult result = tuner::ExhaustiveSearch(task);
  ASSERT_EQ(result.trials.size(), task.space.size());
  double best = result.BestInFirstK(result.trials.size());
  for (const ScheduleConfig& config : task.space) {
    EXPECT_GE(task.measure(config), best);
  }
}

TEST(StrategyTest, BestInFirstKIsMonotone) {
  tuner::TuningTask task = SyntheticTask();
  tuner::TuningResult result = tuner::GridSearch(task, 50);
  for (size_t k = 2; k <= 50; ++k) {
    EXPECT_LE(result.BestInFirstK(k), result.BestInFirstK(k - 1));
  }
}

TEST(StrategyTest, XgbTunerMeasuresDistinctConfigs) {
  tuner::TuningTask task = SyntheticTask();
  tuner::TuningResult result = tuner::XgbTuner(task, 40, {});
  std::set<size_t> unique(result.trials.begin(), result.trials.end());
  EXPECT_EQ(unique.size(), result.trials.size());
  EXPECT_EQ(result.trials.size(), 40u);
}

TEST(StrategyTest, XgbBeatsGridAtSmallBudgets) {
  tuner::TuningTask task = SyntheticTask();
  double exhaustive_best =
      tuner::ExhaustiveSearch(task).BestInFirstK(task.space.size());
  double grid = tuner::GridSearch(task, 40).BestInFirstK(40);
  // Average XGB over seeds to keep the test robust.
  double xgb_sum = 0.0;
  for (uint64_t seed : {1, 2, 3}) {
    tuner::XgbOptions options;
    options.seed = seed;
    xgb_sum += tuner::XgbTuner(task, 40, options).BestInFirstK(40);
  }
  double xgb = xgb_sum / 3.0;
  EXPECT_LT(xgb, grid);
  EXPECT_LE(exhaustive_best, xgb);
}

// The PR 2 invariant: every strategy's TuningResult — trial order AND
// measured cycles — is bit-identical whatever ALCOP_THREADS is, because
// proposal/refit stay on the caller thread and measurement slots are
// owned per index. Runs the real simulator (cold cache each time) so
// concurrent compiles are exercised, not just cache lookups.
TEST(StrategyTest, ResultsAreThreadCountInvariant) {
  GemmOp op = MakeMatmul("mm", 1024, 64, 2048);
  tuner::SpaceOptions space_options;
  space_options.tb_m = {64, 128};
  space_options.tb_n = {32, 64};
  space_options.tb_k = {32, 64};
  space_options.warp_splits = {{2, 1}, {2, 2}};
  tuner::TuningTask task =
      tuner::MakeSimulatorTask(op, target::AmpereSpec(), space_options);
  ASSERT_GE(task.space.size(), 20u);

  auto run_all = [&]() {
    sim::ResetSimCache();  // force real concurrent compiles
    std::vector<tuner::TuningResult> results;
    results.push_back(tuner::ExhaustiveSearch(task));
    results.push_back(tuner::GridSearch(task, 12));
    results.push_back(tuner::AnalyticalRanking(task, 12));
    tuner::XgbOptions options;
    options.seed = 5;
    options.pretrain_with_analytical = true;
    results.push_back(tuner::XgbTuner(task, 24, options));
    options.pretrain_with_analytical = false;
    results.push_back(tuner::XgbTuner(task, 24, options));
    return results;
  };

  support::SetGlobalThreads(1);
  std::vector<tuner::TuningResult> serial = run_all();
  for (int threads : {2, 8}) {
    support::SetGlobalThreads(threads);
    std::vector<tuner::TuningResult> parallel = run_all();
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t s = 0; s < serial.size(); ++s) {
      EXPECT_EQ(serial[s].trials, parallel[s].trials)
          << "strategy " << s << " at " << threads << " threads";
      EXPECT_EQ(serial[s].measured, parallel[s].measured)
          << "strategy " << s << " at " << threads << " threads";
    }
  }
  support::SetGlobalThreads(support::ThreadsFromEnv());
}

TEST(GbtTest, PredictBatchMatchesPredict) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    double a = rng.Uniform(0, 4), b = rng.Uniform(0, 4);
    x.push_back({a, b});
    y.push_back(a * b - a);
  }
  tuner::GbtModel model;
  model.Fit(x, y);
  for (int threads : {1, 8}) {
    support::SetGlobalThreads(threads);
    std::vector<double> batch = model.PredictBatch(x);
    ASSERT_EQ(batch.size(), x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(batch[i], model.Predict(x[i]));
    }
  }
  support::SetGlobalThreads(support::ThreadsFromEnv());
}

TEST(GbtTest, FitIsThreadCountInvariant) {
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  Rng rng(13);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> row;
    for (int f = 0; f < 6; ++f) row.push_back(rng.Uniform(0, 10));
    x.push_back(row);
    y.push_back(row[0] * 2.0 - row[3] + (row[1] > 5 ? 4.0 : 0.0));
  }
  support::SetGlobalThreads(1);
  tuner::GbtModel serial;
  serial.Fit(x, y);
  std::vector<double> serial_pred = serial.PredictBatch(x);
  support::SetGlobalThreads(8);
  tuner::GbtModel parallel;
  parallel.Fit(x, y);
  std::vector<double> parallel_pred = parallel.PredictBatch(x);
  EXPECT_EQ(serial_pred, parallel_pred);
  support::SetGlobalThreads(support::ThreadsFromEnv());
}

// The static pre-filter answers infeasible configs from config arithmetic
// without compiling or simulating. Because its verdict mirrors the
// simulator's, the TuningResult — trial order, every measured value, and
// therefore the best-found schedule — must be bit-identical with the
// filter on or off; only the "tuner.pruned_static" counter moves.
TEST(StrategyTest, StaticPrefilterIsBitIdenticalAndPrunes) {
  GemmOp op = MakeMatmul("mm", 512, 512, 1024);
  tuner::SpaceOptions options;
  // A space straddling the occupancy cliff: 64-wide tiles fit at any
  // stage count, 256x256 tiles at 4 shared stages want 256 KB of shared
  // memory and cannot fit one SM.
  options.tb_m = {64, 256};
  options.tb_n = {64, 256};
  options.tb_k = {32, 64};
  options.warp_splits = {{2, 2}, {2, 4}};
  options.smem_stages = {2, 4};

  options.static_prefilter = false;
  tuner::TuningTask unfiltered =
      tuner::MakeSimulatorTask(op, target::AmpereSpec(), options);
  options.static_prefilter = true;
  tuner::TuningTask filtered =
      tuner::MakeSimulatorTask(op, target::AmpereSpec(), options);
  ASSERT_GE(unfiltered.space.size(), 8u);
  ASSERT_EQ(unfiltered.space.size(), filtered.space.size())
      << "the filter must not change the enumerated space";

  tuner::TuningResult baseline = tuner::ExhaustiveSearch(unfiltered);

  obs::Counter& pruned =
      obs::Registry::Global().GetCounter("tuner.pruned_static");
  uint64_t before = pruned.Value();
  tuner::TuningResult prefiltered = tuner::ExhaustiveSearch(filtered);
  uint64_t skipped = pruned.Value() - before;

  EXPECT_EQ(baseline.trials, prefiltered.trials);
  EXPECT_EQ(baseline.measured, prefiltered.measured);
  EXPECT_EQ(baseline.BestIndex(unfiltered), prefiltered.BestIndex(filtered));

  // The space really straddles the cliff, and every infeasible trial was
  // answered statically.
  size_t infeasible = 0;
  for (double cycles : prefiltered.measured) {
    infeasible += !std::isfinite(cycles);
  }
  EXPECT_GT(infeasible, 0u) << "space must contain infeasible configs";
  EXPECT_LT(infeasible, prefiltered.measured.size());
  EXPECT_EQ(skipped, infeasible)
      << "each infeasible trial is pruned exactly once";
}

TEST(StrategyTest, PretrainingHelpsEarlyTrials) {
  // Fig. 13's core claim: Analytical+XGB finds good schedules with very
  // few trials because the first batch is already model-guided. Use the
  // real simulator on a small space so the analytical prior is meaningful.
  GemmOp op = MakeMatmul("mm", 1024, 64, 2048);
  tuner::SpaceOptions options;
  options.tb_m = {64, 128};
  options.tb_n = {32, 64};
  options.tb_k = {32, 64};
  options.warp_splits = {{2, 1}, {2, 2}};
  tuner::TuningTask task =
      tuner::MakeSimulatorTask(op, target::AmpereSpec(), options);
  ASSERT_GE(task.space.size(), 20u);

  double plain_sum = 0.0, pretrained_sum = 0.0;
  for (uint64_t seed : {1, 2, 3, 4}) {
    tuner::XgbOptions plain;
    plain.seed = seed;
    tuner::XgbOptions pretrained;
    pretrained.seed = seed;
    pretrained.pretrain_with_analytical = true;
    plain_sum += tuner::XgbTuner(task, 8, plain).BestInFirstK(8);
    pretrained_sum += tuner::XgbTuner(task, 8, pretrained).BestInFirstK(8);
  }
  EXPECT_LE(pretrained_sum, plain_sum);
}

}  // namespace
}  // namespace alcop
