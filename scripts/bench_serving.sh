#!/usr/bin/env bash
# Runs the serving bench (cold search vs warm restart from the persisted
# cache, warm-start transfer, LRU residency under budget, and in-process
# alcopd hot-shape latency) and writes machine-readable results to
# BENCH_serving.json (repo root by default), so the tuning-as-a-service
# gates — warm restart >= 5x, transfer reaching cold best on every
# Fig. 10 operator, residency <= ALCOP_CACHE_BYTES with real evictions,
# and hot-shape p99 <= 10 ms — are tracked from PR to PR.
#
# Usage: scripts/bench_serving.sh [--quick] [output.json]
#   --quick      4 operators / 10 trials (the CI serving-smoke mode)
#   output.json  where to write the result (default: ./BENCH_serving.json)
#
# Exit status is the bench's own: nonzero only when a correctness or
# latency gate fails — never because of raw wall time.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=""
OUT="BENCH_serving.json"
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    *) OUT="$arg" ;;
  esac
done
BIN=build/bench/serving

if [[ ! -x "$BIN" ]]; then
  echo "building $BIN..." >&2
  cmake -B build -S . >/dev/null
  cmake --build build --target serving -j "$(nproc)" >/dev/null
fi

echo "running serving bench${QUICK:+ (quick)}..." >&2
"$BIN" $QUICK > "$OUT"
# Stamp run provenance (git SHA, date, thread setting) into the meta
# block; skipped gracefully when python3 is unavailable.
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/bench_meta.py "$OUT"
fi
cat "$OUT"
echo "wrote $OUT" >&2

# One-line delta against the committed baseline, so a local run shows at
# a glance whether restart speedup or daemon latency moved.
if command -v python3 >/dev/null 2>&1 \
    && git show HEAD:BENCH_serving.json > "$OUT.base" 2>/dev/null; then
  python3 - "$OUT" "$OUT.base" >&2 <<'EOF' || true
import json, sys
new, old = (json.load(open(p)) for p in sys.argv[1:3])
def pick(doc, *path):
    for key in path:
        doc = doc.get(key, {}) if isinstance(doc, dict) else {}
    return doc if isinstance(doc, (int, float)) else 0.0
spd_n, spd_o = (pick(d, "tuning", "warm_restart_speedup") for d in (new, old))
p99_n, p99_o = (pick(d, "daemon", "hot_p99_ms") for d in (new, old))
ev_n, ev_o = (pick(d, "lru", "evictions") for d in (new, old))
print(f"delta vs HEAD: warm restart {spd_o:.0f}x -> {spd_n:.0f}x, "
      f"hot p99 {p99_o:.3f} -> {p99_n:.3f} ms, "
      f"evictions {ev_o:.0f} -> {ev_n:.0f}")
EOF
fi
rm -f "$OUT.base"
