#!/usr/bin/env python3
"""Stamps run provenance into bench result files.

Usage: bench_meta.py BENCH_foo.json [BENCH_bar.json ...]

Rewrites each JSON file in place with a populated top-level "meta"
object: the git commit the bench ran at, an ISO-8601 UTC timestamp, and
the ALCOP_THREADS setting (empty string when unset, i.e. hardware
default). Benches emit "meta": {} themselves (or no meta at all); this
script is the single place provenance is attached, so the bench binaries
stay free of git/clock dependencies and their output stays deterministic.

Standard library only — no pip installs.
"""

import datetime
import json
import os
import subprocess
import sys


def git_sha():
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    meta = {
        "git_sha": git_sha(),
        "date": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "alcop_threads": os.environ.get("ALCOP_THREADS", ""),
    }
    status = 0
    for path in argv[1:]:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as err:
            print(f"bench_meta: skipping {path}: {err}", file=sys.stderr)
            status = 1
            continue
        if not isinstance(doc, dict):
            print(f"bench_meta: skipping {path}: not a JSON object",
                  file=sys.stderr)
            status = 1
            continue
        doc["meta"] = meta
        with open(path, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
