#!/usr/bin/env bash
# Runs the tuning-throughput bench and writes machine-readable results to
# BENCH_tuning.json (repo root by default), so the serial-vs-parallel
# wall-time, cache hit rate and thread count are tracked from PR to PR.
#
# Usage: scripts/bench_tuning.sh [threads] [output.json]
#   threads      total concurrency for the parallel phase
#                (default: $ALCOP_THREADS, else 8)
#   output.json  where to write the result (default: ./BENCH_tuning.json)
set -euo pipefail

cd "$(dirname "$0")/.."

THREADS="${1:-${ALCOP_THREADS:-8}}"
OUT="${2:-BENCH_tuning.json}"
BIN=build/bench/tuning_throughput

if [[ ! -x "$BIN" ]]; then
  echo "building $BIN..." >&2
  cmake -B build -S . >/dev/null
  cmake --build build --target tuning_throughput -j "$(nproc)" >/dev/null
fi

echo "running tuning-throughput bench (threads=$THREADS)..." >&2
"$BIN" "$THREADS" > "$OUT"
# Stamp run provenance (git SHA, date, thread setting) into the meta
# block; skipped gracefully when python3 is unavailable.
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/bench_meta.py "$OUT"
fi
cat "$OUT"
echo "wrote $OUT" >&2

# One-line delta against the committed baseline: effective model-pruned
# throughput and the cache speedup, at a glance.
if command -v python3 >/dev/null 2>&1 \
    && git show HEAD:BENCH_tuning.json > "$OUT.base" 2>/dev/null; then
  python3 - "$OUT" "$OUT.base" >&2 <<'EOF' || true
import json, sys
new, old = (json.load(open(p)) for p in sys.argv[1:3])
def pick(doc, *path):
    for key in path:
        doc = doc.get(key, {}) if isinstance(doc, dict) else {}
    return doc if isinstance(doc, (int, float)) else 0.0
eff_n, eff_o = (pick(d, "model_pruning", "effective_configs_per_sec")
                for d in (new, old))
gain_n, gain_o = (pick(d, "model_pruning", "effective_configs_per_sec_gain")
                  for d in (new, old))
cs_n, cs_o = (pick(d, "cache_speedup") for d in (new, old))
print(f"delta vs HEAD: effective {eff_o:.0f} -> {eff_n:.0f} configs/s "
      f"(gain {gain_o:.1f}x -> {gain_n:.1f}x), "
      f"cache speedup {cs_o:.1f}x -> {cs_n:.1f}x")
EOF
  rm -f "$OUT.base"
fi
