#!/usr/bin/env bash
# Runs the tuning-throughput bench and writes machine-readable results to
# BENCH_tuning.json (repo root by default), so the serial-vs-parallel
# wall-time, cache hit rate and thread count are tracked from PR to PR.
#
# Usage: scripts/bench_tuning.sh [threads] [output.json]
#   threads      total concurrency for the parallel phase
#                (default: $ALCOP_THREADS, else 8)
#   output.json  where to write the result (default: ./BENCH_tuning.json)
set -euo pipefail

cd "$(dirname "$0")/.."

THREADS="${1:-${ALCOP_THREADS:-8}}"
OUT="${2:-BENCH_tuning.json}"
BIN=build/bench/tuning_throughput

if [[ ! -x "$BIN" ]]; then
  echo "building $BIN..." >&2
  cmake -B build -S . >/dev/null
  cmake --build build --target tuning_throughput -j "$(nproc)" >/dev/null
fi

echo "running tuning-throughput bench (threads=$THREADS)..." >&2
"$BIN" "$THREADS" > "$OUT"
# Stamp run provenance (git SHA, date, thread setting) into the meta
# block; skipped gracefully when python3 is unavailable.
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/bench_meta.py "$OUT"
fi
cat "$OUT"
echo "wrote $OUT" >&2
