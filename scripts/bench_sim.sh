#!/usr/bin/env bash
# Runs the simulator-throughput bench (AST interpreter vs compiled
# micro-op replay over the Fig. 10 sweep) and writes machine-readable
# results to BENCH_sim.json (repo root by default), so replay speedup,
# determinism, the zero-allocation property of the warm path, and both
# sim-cache layers are tracked from PR to PR.
#
# Usage: scripts/bench_sim.sh [--quick] [output.json]
#   --quick      stride the schedule space 16x (the CI perf-smoke mode)
#   output.json  where to write the result (default: ./BENCH_sim.json)
#
# Exit status is the bench's own: nonzero only when determinism or the
# zero-allocation gate fails — never because of wall time.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=""
OUT="BENCH_sim.json"
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    *) OUT="$arg" ;;
  esac
done
BIN=build/bench/sim_throughput

if [[ ! -x "$BIN" ]]; then
  echo "building $BIN..." >&2
  cmake -B build -S . >/dev/null
  cmake --build build --target sim_throughput -j "$(nproc)" >/dev/null
fi

echo "running simulator-throughput bench${QUICK:+ (quick)}..." >&2
"$BIN" $QUICK > "$OUT"
# Stamp run provenance (git SHA, date, thread setting) into the meta
# block; skipped gracefully when python3 is unavailable.
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/bench_meta.py "$OUT"
fi
cat "$OUT"
echo "wrote $OUT" >&2

# One-line delta against the committed baseline, so a local run shows at
# a glance whether replay throughput or skeleton sharing moved.
if command -v python3 >/dev/null 2>&1 \
    && git show HEAD:BENCH_sim.json > "$OUT.base" 2>/dev/null; then
  python3 - "$OUT" "$OUT.base" >&2 <<'EOF' || true
import json, sys
new, old = (json.load(open(p)) for p in sys.argv[1:3])
def pick(doc, *path):
    for key in path:
        doc = doc.get(key, {}) if isinstance(doc, dict) else {}
    return doc if isinstance(doc, (int, float)) else 0.0
rate_n, rate_o = (pick(d, "replay_configs_per_sec") for d in (new, old))
gain_n, gain_o = (pick(d, "cache", "skeleton_sharing_gain") for d in (new, old))
bpc_n, bpc_o = (pick(d, "cache", "bytes_per_config") for d in (new, old))
ratio = rate_n / rate_o if rate_o else float("inf")
print(f"delta vs HEAD: replay {rate_o:.0f} -> {rate_n:.0f} configs/s "
      f"({ratio:.2f}x), sharing gain {gain_o:.2f} -> {gain_n:.2f}, "
      f"bytes/config {bpc_o:.0f} -> {bpc_n:.0f}")
EOF
  rm -f "$OUT.base"
fi
