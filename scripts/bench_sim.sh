#!/usr/bin/env bash
# Runs the simulator-throughput bench (AST interpreter vs compiled
# micro-op replay over the Fig. 10 sweep) and writes machine-readable
# results to BENCH_sim.json (repo root by default), so replay speedup,
# determinism, the zero-allocation property of the warm path, and both
# sim-cache layers are tracked from PR to PR.
#
# Usage: scripts/bench_sim.sh [--quick] [output.json]
#   --quick      stride the schedule space 16x (the CI perf-smoke mode)
#   output.json  where to write the result (default: ./BENCH_sim.json)
#
# Exit status is the bench's own: nonzero only when determinism or the
# zero-allocation gate fails — never because of wall time.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=""
OUT="BENCH_sim.json"
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    *) OUT="$arg" ;;
  esac
done
BIN=build/bench/sim_throughput

if [[ ! -x "$BIN" ]]; then
  echo "building $BIN..." >&2
  cmake -B build -S . >/dev/null
  cmake --build build --target sim_throughput -j "$(nproc)" >/dev/null
fi

echo "running simulator-throughput bench${QUICK:+ (quick)}..." >&2
"$BIN" $QUICK > "$OUT"
# Stamp run provenance (git SHA, date, thread setting) into the meta
# block; skipped gracefully when python3 is unavailable.
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/bench_meta.py "$OUT"
fi
cat "$OUT"
echo "wrote $OUT" >&2
