#!/usr/bin/env bash
# Runs the serving load bench (observability overhead on the hot path +
# an open-loop arrival process against an obs-enabled alcopd) and writes
# machine-readable results to BENCH_serving_load.json (repo root by
# default). The bench's own gates — obs-enabled hot p99 within 10% of
# the larger of the plain run and the committed BENCH_serving.json
# baseline, every open-loop request answered, and the access-log line
# count matching the scraped latency-histogram _count — decide the exit
# status. The /metrics scrape the bench takes is additionally validated
# with scripts/check_prometheus.py (HELP/TYPE per family, cumulative
# buckets, +Inf == _count, alcop_build_info present, and a
# bounded-cardinality ceiling of 64 series per family so per-client
# attribution cannot mint unbounded label sets).
#
# Usage: scripts/bench_serving_load.sh [--quick] [output.json]
#   --quick      300 open-loop requests at 500 rps (CI serving-smoke mode)
#   output.json  where to write the result (default: ./BENCH_serving_load.json)
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=""
OUT="BENCH_serving_load.json"
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    *) OUT="$arg" ;;
  esac
done
BIN=build/bench/serving_load

if [[ ! -x "$BIN" ]]; then
  echo "building $BIN..." >&2
  cmake -B build -S . >/dev/null
  cmake --build build --target serving_load -j "$(nproc)" >/dev/null
fi

# The overhead gate references the committed serving baseline so a
# lucky-fast plain run on this machine cannot mask a real regression.
BASELINE="0"
if command -v python3 >/dev/null 2>&1 \
    && git show HEAD:BENCH_serving.json > "$OUT.base" 2>/dev/null; then
  BASELINE=$(python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
print(doc.get("daemon", {}).get("hot_p99_ms", 0))' "$OUT.base")
  rm -f "$OUT.base"
fi

METRICS="$(mktemp /tmp/alcop_metrics.XXXXXX.txt)"
trap 'rm -f "$METRICS"' EXIT

echo "running serving load bench${QUICK:+ (quick)} (baseline p99 ${BASELINE} ms)..." >&2
"$BIN" $QUICK --baseline-p99 "$BASELINE" --metrics-out "$METRICS" > "$OUT"

# Validate the live scrape the bench took: exposition format, bucket
# monotonicity, +Inf == _count, and the access-log tie-in.
if command -v python3 >/dev/null 2>&1; then
  EXPECT=$(python3 -c '
import json, sys
doc = json.load(open(sys.argv[1]))
print(doc.get("scraped", {}).get("access_log_lines", 0))' "$OUT")
  python3 scripts/check_prometheus.py "$METRICS" --expect-count "$EXPECT" \
    --max-series 64 >&2
  python3 scripts/bench_meta.py "$OUT"
fi
cat "$OUT"
echo "wrote $OUT" >&2
