#!/usr/bin/env bash
# Formats (or with --check, only checks) all C++ sources with clang-format
# using the repository's .clang-format. CI runs `scripts/format.sh --check`.
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-}"
if [[ -z "${CLANG_FORMAT}" ]]; then
  for candidate in clang-format clang-format-19 clang-format-18 \
                   clang-format-17 clang-format-16 clang-format-15; do
    if command -v "${candidate}" >/dev/null 2>&1; then
      CLANG_FORMAT="${candidate}"
      break
    fi
  done
fi
if [[ -z "${CLANG_FORMAT}" ]]; then
  echo "format.sh: clang-format not found; skipping" >&2
  exit 0
fi

mapfile -t files < <(git ls-files '*.cc' '*.h' '*.cpp')
if [[ ${#files[@]} -eq 0 ]]; then
  echo "format.sh: no sources found" >&2
  exit 0
fi

if [[ "${1:-}" == "--check" ]]; then
  "${CLANG_FORMAT}" --dry-run --Werror "${files[@]}"
  echo "format.sh: ${#files[@]} files clean"
else
  "${CLANG_FORMAT}" -i "${files[@]}"
  echo "format.sh: formatted ${#files[@]} files"
fi
