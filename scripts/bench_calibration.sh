#!/usr/bin/env bash
# Runs the model-calibration bench (Table-I analytical terms vs PMU/stall
# measurements over the Fig. 10 sweep) and writes machine-readable
# results to BENCH_calibration.json (repo root by default), so per-term
# model error and the bottleneck-verdict agreement rate are tracked from
# PR to PR.
#
# Usage: scripts/bench_calibration.sh [--quick] [output.json]
#   --quick      stride the schedule space 16x (the CI perf-smoke mode)
#   output.json  where to write the result (default: ./BENCH_calibration.json)
#
# Exit status is the bench's own: nonzero only when the sampled PMU
# differential mismatches or the roofline agreement rate drops below
# 0.90 — never because of wall time or error magnitudes.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=""
OUT="BENCH_calibration.json"
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    *) OUT="$arg" ;;
  esac
done
BIN=build/bench/calibration

if [[ ! -x "$BIN" ]]; then
  echo "building $BIN..." >&2
  cmake -B build -S . >/dev/null
  cmake --build build --target calibration -j "$(nproc)" >/dev/null
fi

echo "running model-calibration bench${QUICK:+ (quick)}..." >&2
"$BIN" $QUICK > "$OUT"
# Stamp run provenance (git SHA, date, thread setting) into the meta
# block; skipped gracefully when python3 is unavailable.
if command -v python3 >/dev/null 2>&1; then
  python3 scripts/bench_meta.py "$OUT"
fi
cat "$OUT"
echo "wrote $OUT" >&2
