#!/usr/bin/env python3
"""Validates a Prometheus text-exposition (0.0.4) dump from alcopd.

Usage: scripts/check_prometheus.py METRICS_FILE [--expect-count N]
                                                [--max-series N]

Checks, per the acceptance gates in the serving observability PR:
  * every sample belongs to a family that has both a # TYPE line and a
    # HELP line, emitted before the first sample of that family;
  * sample lines parse (name, optional {labels}, float value) and label
    values are correctly quoted/escaped;
  * histogram buckets are cumulative: counts are non-decreasing as `le`
    increases, a +Inf bucket exists, and `_count` equals the +Inf
    bucket; `_sum` exists for every histogram series;
  * counters and histogram buckets are non-negative;
  * alcop_build_info is present exactly once with value 1 and carries
    at least the git_sha, build_type and spec_fingerprint labels.

With --expect-count N, additionally requires the summed `_count` of
alcop_serving_request_latency_us across lanes to equal N (used by CI to
tie the scrape to the access-log line count). Series carrying a
`client` label are excluded from the sum: per-client attribution
duplicates each request into a {client,lane} series, so only the
lane-level series tie 1:1 to access-log lines.

With --max-series N, additionally requires every family to expose at
most N distinct label sets — the bounded-cardinality gate for the
top-K per-client attribution (overflow identities must collapse into
the shared client="other" series instead of minting new ones).

Exit status 0 when every check passes; 1 with one line per defect
otherwise. Stdlib only.
"""
import re
import sys

SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>.*)\})?'
    r' (?P<value>[^ ]+)$')
LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\["\\n])*)"')


def family_of(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_labels(raw):
    """Returns a dict, or None when the label section is malformed."""
    labels = {}
    pos = 0
    while pos < len(raw):
        match = LABEL_RE.match(raw, pos)
        if not match:
            return None
        labels[match.group("key")] = match.group("value")
        pos = match.end()
        if pos < len(raw):
            if raw[pos] != ",":
                return None
            pos += 1
    return labels


def main():
    args = sys.argv[1:]
    expect_count = None
    if "--expect-count" in args:
        idx = args.index("--expect-count")
        expect_count = int(args[idx + 1])
        del args[idx:idx + 2]
    max_series = None
    if "--max-series" in args:
        idx = args.index("--max-series")
        max_series = int(args[idx + 1])
        del args[idx:idx + 2]
    if len(args) != 1:
        sys.stderr.write(__doc__)
        return 1
    with open(args[0], "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()

    errors = []
    helps = {}
    types = {}
    # family -> series-labels-key -> list of (le, count) / sum / count
    buckets = {}
    sums = {}
    counts = {}
    # family -> label-dict per series-key (to test for a client label)
    series_labels = {}
    # family -> set of series keys, every sample kind (cardinality gate)
    family_series = {}
    build_info = []  # (labels, value) for every alcop_build_info sample
    seen_families = []

    for number, line in enumerate(lines, 1):
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                errors.append(f"line {number}: malformed HELP")
                continue
            helps[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) != 4:
                errors.append(f"line {number}: malformed TYPE")
                continue
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue

        match = SAMPLE_RE.match(line)
        if not match:
            errors.append(f"line {number}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        labels = parse_labels(match.group("labels") or "")
        if labels is None:
            errors.append(f"line {number}: malformed labels: {line!r}")
            continue
        try:
            value = float(match.group("value").replace("+Inf", "inf"))
        except ValueError:
            errors.append(f"line {number}: bad value: {line!r}")
            continue

        family = family_of(name)
        if family not in types:
            errors.append(f"line {number}: sample {name} before TYPE {family}")
        if family not in helps:
            errors.append(f"line {number}: sample {name} before HELP {family}")
        if family not in seen_families:
            seen_families.append(family)

        kind = types.get(family, "")
        series = ",".join(
            f'{k}={v}' for k, v in sorted(labels.items()) if k != "le")
        family_series.setdefault(family, set()).add(series)
        series_labels.setdefault(family, {})[series] = {
            k: v for k, v in labels.items() if k != "le"}
        if name == "alcop_build_info":
            build_info.append((labels, value))
        if kind == "histogram":
            slot = buckets.setdefault(family, {}).setdefault(series, [])
            if name.endswith("_bucket"):
                le_raw = labels.get("le")
                if le_raw is None:
                    errors.append(f"line {number}: bucket without le")
                    continue
                le = float("inf") if le_raw == "+Inf" else float(le_raw)
                if value < 0:
                    errors.append(f"line {number}: negative bucket count")
                slot.append((le, value))
            elif name.endswith("_sum"):
                sums.setdefault(family, {})[series] = value
            elif name.endswith("_count"):
                counts.setdefault(family, {})[series] = value
            else:
                errors.append(
                    f"line {number}: bare sample {name} in histogram family")
        elif kind == "counter":
            if value < 0:
                errors.append(f"line {number}: negative counter {name}")

    for family, series_map in buckets.items():
        for series, entries in series_map.items():
            where = f"{family}{{{series}}}"
            les = [le for le, _ in entries]
            if les != sorted(les):
                errors.append(f"{where}: buckets not in ascending le order")
            values = [v for _, v in entries]
            if any(b < a for a, b in zip(values, values[1:])):
                errors.append(f"{where}: bucket counts decrease")
            if not entries or entries[-1][0] != float("inf"):
                errors.append(f"{where}: missing +Inf bucket")
                continue
            inf_count = entries[-1][1]
            declared = counts.get(family, {}).get(series)
            if declared is None:
                errors.append(f"{where}: missing _count")
            elif declared != inf_count:
                errors.append(
                    f"{where}: _count {declared} != +Inf bucket {inf_count}")
            if series not in sums.get(family, {}):
                errors.append(f"{where}: missing _sum")

    if not build_info:
        errors.append("alcop_build_info: missing")
    elif len(build_info) > 1:
        errors.append(f"alcop_build_info: {len(build_info)} samples, want 1")
    else:
        info_labels, info_value = build_info[0]
        if info_value != 1:
            errors.append(f"alcop_build_info: value {info_value} != 1")
        missing = {"git_sha", "build_type", "spec_fingerprint"} - set(
            info_labels)
        if missing:
            errors.append(
                "alcop_build_info: missing label(s) "
                + ", ".join(sorted(missing)))

    if expect_count is not None:
        family = "alcop_serving_request_latency_us"
        total = sum(
            value for series, value in counts.get(family, {}).items()
            if "client" not in series_labels.get(family, {}).get(series, {}))
        if total != expect_count:
            errors.append(
                f"{family}: lane-level _count {total} "
                f"!= expected {expect_count}")

    if max_series is not None:
        for family, keys in sorted(family_series.items()):
            if len(keys) > max_series:
                errors.append(
                    f"{family}: {len(keys)} series "
                    f"> --max-series {max_series}")

    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        print(f"FAIL: {len(errors)} defect(s) in {args[0]}", file=sys.stderr)
        return 1
    print(
        f"OK: {len(seen_families)} families, "
        f"{sum(len(s) for s in buckets.values())} histogram series")
    return 0


if __name__ == "__main__":
    sys.exit(main())
