// Example: model-assisted schedule tuning on a BERT operator.
//
// Runs ALCOP's Analytical+XGB tuner on the BERT FFN down-projection (the
// operator family where pipelining shines: small output, long reduction),
// printing the search trajectory and the final schedule, and compares the
// 50-trial result against exhaustive search.
#include <cstdio>

#include "target/gpu_spec.h"
#include "tuner/strategy.h"
#include "workloads/ops.h"

using namespace alcop;  // NOLINT(build/namespaces) - example code

int main() {
  target::GpuSpec spec = target::AmpereSpec();
  const schedule::GemmOp& op = workloads::FindOp("MM_BERT_FC2");

  tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
  std::printf("== Tuning %s (M=%ld N=%ld K=%ld), space of %zu schedules ==\n\n",
              op.name.c_str(), op.m, op.n, op.k, task.space.size());

  tuner::XgbOptions options;
  options.pretrain_with_analytical = true;
  options.seed = 42;
  tuner::TuningResult result = tuner::XgbTuner(task, 50, options);

  std::printf("%6s %-52s %12s %10s\n", "trial", "schedule", "cycles",
              "best-so-far");
  double best = 1e300;
  for (size_t i = 0; i < result.trials.size(); ++i) {
    const schedule::ScheduleConfig& config = task.space[result.trials[i]];
    double cycles = result.measured[i];
    if (cycles < best) best = cycles;
    if (i < 10 || cycles == best) {
      std::printf("%6zu %-52s %12.0f %10.0f\n", i + 1,
                  config.ToString().c_str(), cycles, best);
    }
  }

  size_t best_index = result.BestIndex(task);
  std::printf("\nbest schedule after 50 trials: %s\n",
              task.space[best_index].ToString().c_str());

  tuner::TuningResult exhaustive = tuner::ExhaustiveSearch(task);
  double optimum = exhaustive.BestInFirstK(exhaustive.trials.size());
  std::printf("exhaustive optimum over %zu schedules: %.0f cycles\n",
              task.space.size(), optimum);
  std::printf("50-trial tuner reached %.1f%% of the optimum with %.0fx "
              "fewer trials\n",
              100.0 * optimum / best,
              static_cast<double>(task.space.size()) / 50.0);
  return 0;
}
