// Example: pipelining a custom, non-GEMM operator.
//
// The paper's case for ALCOP over libraries like CUTLASS is extensibility:
// pipelining is a *program transformation*, so it applies to any tensor
// program with a load-and-use loop — not just the kernels a library ships.
// This example writes a custom two-buffer streaming operator in textual
// IR (a dual-stream elementwise transform over row blocks — the shape of a
// fused data-layout/activation kernel), attaches pipeline hints, runs the
// transformation, validates the result numerically under the
// async-semantics checker, and compares simulated latency.
#include <cstdio>

#include "ir/parser.h"
#include "ir/printer.h"
#include "pipeline/transform.h"
#include "sim/desim.h"
#include "sim/executor.h"
#include "sim/trace.h"
#include "target/gpu_spec.h"

using namespace alcop;  // NOLINT(build/namespaces) - example code

namespace {

constexpr const char* kCustomOperator =
    R"(pragma pipeline_stages(x_buf) = 3 {
  pragma pipeline_stages(y_buf) = 3 {
    alloc x_buf: shared fp16[256]
    alloc y_buf: shared fp16[256]
    for t in 0..32 serial {
      copy x_buf[0][256] <- X[t, 0][1, 256]
      copy y_buf[0][256] <- Y[t, 0][1, 256]
      barrier
      copy Out[t, 0][1, 256] <- scale[0.125](x_buf[0][256])
      copy Out2[t, 0][1, 256] <- gelu(y_buf[0][256])
      barrier
    }
  }
}
)";

double Simulate(const ir::Stmt& program,
                const pipeline::TransformResult& transformed,
                const target::GpuSpec& spec) {
  sim::ThreadblockTrace trace = sim::BuildTrace(program, /*num_warps=*/1);
  sim::DesimParams params;
  params.threadblocks = 2;
  for (const pipeline::PipelineGroupInfo& group : transformed.groups) {
    params.groups.push_back(
        {group.stages, group.scope == ir::MemScope::kShared});
  }
  return sim::SimulateBatch(trace, spec, params);
}

}  // namespace

int main() {
  target::GpuSpec spec = target::AmpereSpec();

  // External tensors referenced by the textual program.
  ir::Buffer x = ir::MakeBuffer("X", ir::MemScope::kGlobal, {32, 256});
  ir::Buffer y = ir::MakeBuffer("Y", ir::MemScope::kGlobal, {32, 256});
  ir::Buffer out = ir::MakeBuffer("Out", ir::MemScope::kGlobal, {32, 256});
  ir::Buffer out2 = ir::MakeBuffer("Out2", ir::MemScope::kGlobal, {32, 256});

  ir::Stmt program = ir::ParseStmt(kCustomOperator, {x, y, out, out2});
  std::printf("== custom streaming operator (hand-written IR) ==\n\n%s\n",
              ir::ToString(program).c_str());

  pipeline::TransformResult transformed =
      pipeline::ApplyPipelineTransform(program);
  std::printf("== after automatic pipelining ==\n\n%s\n",
              ir::ToString(transformed.stmt).c_str());
  for (const pipeline::PipelineGroupInfo& group : transformed.groups) {
    std::printf("group %d: %zu buffer(s), %ld stages over loop '%s' (%s)\n",
                group.id, group.buffer_names.size(), group.stages,
                group.loop_var.c_str(), PipelineModeName(group.mode));
  }

  // Numerical validation under the async-visibility checker.
  std::vector<float> x_data(32 * 256), y_data(32 * 256);
  for (size_t i = 0; i < x_data.size(); ++i) {
    x_data[i] = static_cast<float>(i % 97);
    y_data[i] = static_cast<float>(i % 31);
  }
  sim::Executor exec;
  exec.Bind(x, x_data);
  exec.Bind(y, y_data);
  exec.Run(transformed.stmt);
  bool correct = true;
  for (size_t i = 0; i < x_data.size(); ++i) {
    if (exec.Data(out)[i] != 0.125f * x_data[i]) correct = false;
  }
  std::printf("\nnumerical check vs reference: %s\n",
              correct ? "PASS" : "FAIL");

  double before = Simulate(program, {}, spec);
  double after = Simulate(transformed.stmt, transformed, spec);
  std::printf("simulated latency: %.0f cycles -> %.0f cycles (%.2fx)\n",
              before, after, before / after);
  return correct ? 0 : 1;
}
