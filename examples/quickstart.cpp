// Quickstart: compile a matrix multiplication with and without automatic
// pipelining, print the transformed IR, and compare simulated performance
// on the Ampere-class device model.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "ir/printer.h"
#include "sim/launch.h"
#include "target/gpu_spec.h"

using namespace alcop;  // NOLINT(build/namespaces) - example code

int main() {
  target::GpuSpec spec = target::AmpereSpec();

  // The paper's motivating example: a 2048 x 2048 x 2048 half-precision
  // matrix multiplication (Fig. 1b).
  schedule::GemmOp op = schedule::MakeMatmul("MM_2048", 2048, 2048, 2048);

  schedule::ScheduleConfig config;
  config.tile = {.tb_m = 128, .tb_n = 128, .tb_k = 32,
                 .warp_m = 64, .warp_n = 64, .warp_k = 16};

  std::printf("== ALCOP quickstart: %s on %s ==\n\n", op.name.c_str(),
              spec.name.c_str());

  std::printf("%-32s %12s %10s %8s\n", "schedule", "cycles", "TFLOP/s",
              "tb/SM");
  struct Variant {
    const char* label;
    int smem_stages;
    int reg_stages;
  };
  for (Variant v : {Variant{"no pipelining (TVM-like)", 1, 1},
                    Variant{"double buffering", 2, 1},
                    Variant{"multi-stage (4)", 4, 1},
                    Variant{"multi-stage + multi-level", 4, 2}}) {
    config.smem_stages = v.smem_stages;
    config.reg_stages = v.reg_stages;
    sim::KernelTiming timing = sim::CompileAndSimulate(op, config, spec);
    if (!timing.feasible) {
      std::printf("%-32s infeasible: %s\n", v.label, timing.reason.c_str());
      continue;
    }
    std::printf("%-32s %12.0f %10.1f %8d\n", v.label, timing.cycles,
                timing.tflops, timing.threadblocks_per_sm);
  }

  // Show the pipelined IR for a small problem so the output is readable.
  std::printf("\n== transformed IR (small problem, 3-stage smem / 2-stage reg) ==\n\n");
  schedule::GemmOp small = schedule::MakeMatmul("small", 64, 64, 64);
  schedule::ScheduleConfig small_config;
  small_config.tile = {.tb_m = 32, .tb_n = 32, .tb_k = 16,
                       .warp_m = 16, .warp_n = 16, .warp_k = 8};
  small_config.smem_stages = 3;
  small_config.reg_stages = 2;
  sim::CompiledKernel compiled = sim::CompileKernel(small, small_config, spec);
  std::printf("%s\n", ir::ToString(compiled.transformed.stmt).c_str());
  return 0;
}
