// Example: visualizing what pipelining actually does.
//
// Captures the discrete-event simulator's execution timeline of one
// threadblock batch for the same GEMM compiled three ways, and renders
// the paper's Fig. 2/3 intuition from real simulation data:
//   - synchronous baseline: warps alternate blocking loads ('L') and
//     tensor-core work ('M'), separated by barriers ('b');
//   - shared-memory pipelining: loads become background transfers ('T' on
//     the memory row) and the warps' stalls shrink to pipeline waits ('w');
//   - multi-stage multi-level: compute ('M') dominates the rows.
#include <cstdio>

#include "sim/launch.h"
#include "sim/timeline.h"
#include "target/gpu_spec.h"

using namespace alcop;  // NOLINT(build/namespaces) - example code

namespace {

void Show(const char* label, const schedule::GemmOp& op,
          const schedule::ScheduleConfig& config,
          const target::GpuSpec& spec) {
  sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);
  sim::BatchTimeline batch = sim::CaptureTimeline(compiled, spec);
  sim::KernelTiming timing = sim::SimulateKernel(compiled, spec);
  std::printf("== %s (%s): %.0f cycles, %.1f TFLOP/s ==\n", label,
              config.ToString().c_str(), timing.cycles, timing.tflops);
  sim::RenderOptions options;
  options.max_threadblocks = 1;  // one threadblock is enough to see it
  std::printf("%s\n", sim::RenderTimeline(batch.timeline, batch.num_warps,
                                          options)
                          .c_str());
}

}  // namespace

int main() {
  target::GpuSpec spec = target::AmpereSpec();
  // A K-heavy problem where the load/compute overlap is clearly visible.
  schedule::GemmOp op = schedule::MakeMatmul("MM_timeline", 512, 256, 2048);

  schedule::ScheduleConfig config;
  config.tile = {.tb_m = 128, .tb_n = 128, .tb_k = 32,
                 .warp_m = 64, .warp_n = 64, .warp_k = 16};

  Show("synchronous baseline", op, config, spec);

  config.smem_stages = 3;
  Show("3-stage shared-memory pipeline", op, config, spec);

  config.smem_stages = 4;
  config.reg_stages = 2;
  Show("4-stage + multi-level pipeline", op, config, spec);
  return 0;
}
