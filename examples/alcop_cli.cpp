// alcop_cli — command-line driver for the whole stack.
//
//   alcop_cli compile  M N K [batch]   compile + print pipelined IR & timing
//   alcop_cli tune     M N K [trials] [--log FILE] [--model-topk N]
//                                      model-assisted tuning, print winner;
//                                      --model-topk simulates only the
//                                      analytical model's N favorites
//                                      (plus an exploration tail)
//   alcop_cli timeline M N K           render the execution timeline
//   alcop_cli ops                      list the benchmark operator suite
//   alcop_cli models                   list the end-to-end model graphs
//   alcop_cli parse    FILE            parse a textual IR file, validate by
//                                      re-printing it (round-trip check)
//   alcop_cli verify   FILE [--json]   statically verify the pipeline
//                                      synchronization of a textual IR file
//                                      (exit 1 on errors; see src/verify/);
//                                      --json emits the shared diagnostic
//                                      JSON schema (same renderer as lint)
//   alcop_cli lint     WORKLOAD|FILE [--json] [--no-swizzle]
//                                      run the static analysis framework
//                                      (src/analysis/): bounds proofs,
//                                      region-level race detection, bank
//                                      conflicts, occupancy feasibility.
//                                      A workload is compiled with its best
//                                      schedule first; a .tir file is
//                                      linted as written (with source
//                                      spans). Exit 1 on L-code errors.
//   alcop_cli profile  WORKLOAD [--json] [--trace FILE] [--counters]
//                                      full observability report: per-warp
//                                      stall attribution, pipe utilization,
//                                      bottleneck verdict, PMU counters;
//                                      --trace exports a Chrome/Perfetto
//                                      trace with host spans and the
//                                      simulated-GPU timeline; --counters
//                                      prints the PMU table (--json always
//                                      embeds the counter block). One
//                                      simulation serves timing, counters
//                                      and the profiled timeline.
//                                      WORKLOAD is a benchmark op name
//                                      (see `ops`) or M N K [batch].
//   alcop_cli calibrate WORKLOAD [--json]
//                                      audit the Table-I analytical model
//                                      against PMU/stall measurements:
//                                      per-term relative error, roofline
//                                      regime, bottleneck-verdict
//                                      cross-check.
//   alcop_cli calibrate --fit [--stride N] [--json]
//                                      re-derive the spec's model-fit
//                                      corrections (per-term residuals +
//                                      composition constants) from a
//                                      strided Fig. 10 sweep; exits 1 if
//                                      the checked-in spec constants are
//                                      stale.
//   alcop_cli cache    [stats|clear|persist|load] [--json] [--path FILE]
//                                      inspect or manage the sim cache and
//                                      its persistent on-disk form. The
//                                      path defaults to $ALCOP_CACHE_DIR/
//                                      sim_cache.alcp; load exits 1 when
//                                      the file is missing or incompatible
//                                      (wrong version/spec/fitted
//                                      constants).
//   alcop_cli serve    SOCKET [--trials N] [--seed N] [--no-warm]
//                             [--cache FILE] [--no-persist] [--budget B]
//                             [--http PORT] [--access-log FILE]
//                             [--flight-depth N] [--snapshot-interval MS]
//                             [--watchdog-ms MS] [--log-level LEVEL]
//                             [--log-file FILE]
//                                      run alcopd on a unix socket: the
//                                      long-lived tuning service (fast
//                                      lane for cache hits, batched slow
//                                      lane for compiles and searches);
//                                      loads the on-disk cache at start,
//                                      persists at shutdown. Stop it with
//                                      `client SOCKET shutdown`.
//                                      --http adds a loopback HTTP front
//                                      end (0 = ephemeral port): GET
//                                      /metrics (Prometheus), /healthz,
//                                      /debug/{requests,timeseries,trace,
//                                      log}, POST /v1/<method>.
//                                      --access-log writes one JSONL line
//                                      per request. --flight-depth sizes
//                                      the request flight recorder,
//                                      --snapshot-interval the periodic
//                                      metrics time series, --watchdog-ms
//                                      the stalled-lane threshold.
//                                      --log-level (or $ALCOP_LOG_LEVEL)
//                                      is debug|info|warn|error|off;
//                                      --log-file appends the JSONL log.
//   alcop_cli client   SOCKET METHOD [...]
//                                      talk to a running alcopd:
//                                        ping|stats|persist|load|shutdown
//                                        tune M N K [batch] [--trials N]
//                                             [--no-warm] [--force]
//                                        compile|profile M N K [batch]
//                                             --tb M,N,K [--warp M,N,K]
//                                             [--smem S] [--reg R]
//                                             [--split-k S]
//                                        debug [requests|timeseries|log|
//                                             trace] [N] [--client C]
//                                             [--lane L] [--outcome O]
//                                             [--metric M]
//                                        '{...}'   raw protocol JSON
//                                      prints the response payload; exit 0
//                                      iff the daemon answered ok:true.
//
// Shapes use the best schedule found by a 16-trial analytical ranking.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/pass.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "obs/chrome_trace.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/stall.h"
#include "obs/trace.h"
#include "perfmodel/calibration.h"
#include "serving/client.h"
#include "serving/persist.h"
#include "serving/protocol.h"
#include "serving/server.h"
#include "support/check.h"
#include "sim/launch.h"
#include "sim/pmu.h"
#include "sim/sim_cache.h"
#include "sim/timeline.h"
#include "sim/traffic_report.h"
#include "target/gpu_spec.h"
#include "tuner/records.h"
#include "tuner/strategy.h"
#include "verify/verifier.h"
#include "workloads/models.h"
#include "workloads/ops.h"

using namespace alcop;  // NOLINT(build/namespaces) - CLI driver

namespace {

schedule::ScheduleConfig BestConfig(const schedule::GemmOp& op,
                                    const target::GpuSpec& spec,
                                    size_t trials) {
  tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
  if (task.space.empty()) {
    std::fprintf(stderr, "no valid schedule for %ldx%ldx%ld\n", op.m, op.n,
                 op.k);
    std::exit(1);
  }
  tuner::TuningResult result = tuner::AnalyticalRanking(task, trials);
  size_t best = result.BestIndex(task);
  if (best >= task.space.size()) best = 0;
  return task.space[best];
}

// WORKLOAD positionals: a benchmark op name (see `ops`) or M N K [batch].
bool ParseWorkload(const std::vector<char*>& positional,
                   schedule::GemmOp* op) {
  if (positional.empty()) {
    std::fprintf(stderr,
                 "expected a workload: a benchmark op name (see `alcop_cli "
                 "ops`) or M N K [batch]\n");
    return false;
  }
  if (std::isdigit(static_cast<unsigned char>(positional[0][0]))) {
    int64_t m = std::atoll(positional[0]);
    int64_t n = positional.size() > 1 ? std::atoll(positional[1]) : 0;
    int64_t k = positional.size() > 2 ? std::atoll(positional[2]) : 0;
    int64_t batch = positional.size() > 3 ? std::atoll(positional[3]) : 1;
    if (m <= 0 || n <= 0 || k <= 0) {
      std::fprintf(stderr, "expected M N K [batch]\n");
      return false;
    }
    *op = batch > 1 ? schedule::MakeBatchMatmul("cli", batch, m, n, k)
                    : schedule::MakeMatmul("cli", m, n, k);
    return true;
  }
  try {
    *op = workloads::FindOp(positional[0]);
  } catch (const CheckError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return false;
  }
  return true;
}

std::string JsonDouble(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

const char* TrialEventName(tuner::TrialEvent::Kind kind) {
  switch (kind) {
    case tuner::TrialEvent::Kind::kProposed: return "proposed";
    case tuner::TrialEvent::Kind::kMeasured: return "measured";
    case tuner::TrialEvent::Kind::kRefit: return "refit";
  }
  return "unknown";
}

schedule::GemmOp OpFromArgs(int argc, char** argv, int base) {
  if (argc < base + 3) {
    std::fprintf(stderr, "expected M N K [batch]\n");
    std::exit(1);
  }
  int64_t m = std::atoll(argv[base]);
  int64_t n = std::atoll(argv[base + 1]);
  int64_t k = std::atoll(argv[base + 2]);
  int64_t batch = argc > base + 3 ? std::atoll(argv[base + 3]) : 1;
  return batch > 1 ? schedule::MakeBatchMatmul("cli", batch, m, n, k)
                   : schedule::MakeMatmul("cli", m, n, k);
}

int CmdCompile(int argc, char** argv) {
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op = OpFromArgs(argc, argv, 2);
  schedule::ScheduleConfig config = BestConfig(op, spec, 16);
  sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);
  sim::KernelTiming timing = sim::SimulateKernel(compiled, spec);

  std::printf("schedule: %s\n", config.ToString().c_str());
  for (const pipeline::DetectionEntry& entry : compiled.detection.entries) {
    int stages = entry.buffer.find("shared") != std::string::npos
                     ? config.smem_stages
                     : config.reg_stages;
    std::string status;
    if (!entry.eligible) {
      status = "not pipelinable (" + entry.reason + ")";
    } else if (stages < 2) {
      status = "pipelinable, 1 stage selected";
    } else {
      status = "pipelined with " + std::to_string(stages) + " stages";
    }
    std::printf("  %-10s %s\n", entry.buffer.c_str(), status.c_str());
  }
  std::printf("timing: %.0f cycles, %.1f us, %.1f TFLOP/s, %d tb/SM, %ld "
              "batches\n",
              timing.cycles, timing.microseconds, timing.tflops,
              timing.threadblocks_per_sm, timing.batches);
  std::printf("%s\n\n",
              sim::AnalyzeKernelTraffic(compiled, spec).ToString().c_str());
  std::printf("%s", ir::ToString(compiled.transformed.stmt).c_str());
  return 0;
}

int CmdTune(int argc, char** argv) {
  // tune M N K [trials] [--log FILE] [--model-topk N]; --log streams one
  // JSON object per search event (proposals with GBT + analytical scores,
  // measurements, refits with rank accuracy); --model-topk prunes the
  // space to the analytical model's N favorites plus an exploration tail
  // (N=0 disables; bare --model-topk uses the default cut).
  std::string log_path;
  int model_topk = 0;
  std::vector<char*> positional;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--log") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--log expects an output file\n");
        return 1;
      }
      log_path = argv[++i];
    } else if (std::strcmp(argv[i], "--model-topk") == 0) {
      model_topk = tuner::SpaceOptions::kDefaultModelTopK;
      if (i + 1 < argc && std::isdigit(argv[i + 1][0])) {
        model_topk = std::atoi(argv[++i]);
      }
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() < 3) {
    std::fprintf(stderr, "expected M N K [trials]\n");
    return 1;
  }
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op =
      schedule::MakeMatmul("cli", std::atoll(positional[0]),
                           std::atoll(positional[1]),
                           std::atoll(positional[2]));
  size_t trials = positional.size() > 3
                      ? static_cast<size_t>(std::atoll(positional[3]))
                      : 50;

  tuner::SpaceOptions space_options;
  space_options.model_topk = model_topk;
  tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec, space_options);
  tuner::XgbOptions options;
  options.pretrain_with_analytical = true;
  std::ofstream log;
  if (!log_path.empty()) {
    log.open(log_path);
    if (!log) {
      std::fprintf(stderr, "cannot write '%s'\n", log_path.c_str());
      return 1;
    }
    options.logger = [&log](const tuner::TrialEvent& e) {
      log << "{\"event\": \"" << TrialEventName(e.kind)
          << "\", \"round\": " << e.round;
      switch (e.kind) {
        case tuner::TrialEvent::Kind::kProposed:
          log << ", \"trial\": " << e.trial
              << ", \"space_index\": " << e.space_index << ", \"config\": \""
              << e.config << "\", \"predicted_score\": "
              << JsonDouble(e.predicted_score)
              << ", \"analytical_cycles\": "
              << JsonDouble(e.analytical_cycles);
          break;
        case tuner::TrialEvent::Kind::kMeasured:
          log << ", \"trial\": " << e.trial
              << ", \"space_index\": " << e.space_index
              << ", \"measured_cycles\": " << JsonDouble(e.measured_cycles);
          break;
        case tuner::TrialEvent::Kind::kRefit:
          log << ", \"training_size\": " << e.training_size
              << ", \"rank_accuracy\": " << JsonDouble(e.rank_accuracy);
          break;
      }
      log << "}\n";
    };
  }
  tuner::TuningResult result = tuner::XgbTuner(task, trials, options);
  size_t best = result.BestIndex(task);
  std::printf("space: %zu schedules; %zu trials\n", task.space.size(),
              result.trials.size());
  std::printf("best: %s  (%.0f cycles)\n",
              task.space[best].ToString().c_str(),
              result.BestInFirstK(result.trials.size()));
  if (!log_path.empty()) {
    std::fprintf(stderr, "wrote search log to %s\n", log_path.c_str());
  }
  return 0;
}

int CmdTimeline(int argc, char** argv) {
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op = OpFromArgs(argc, argv, 2);
  schedule::ScheduleConfig config = BestConfig(op, spec, 16);
  sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);
  sim::BatchTimeline batch = sim::CaptureTimeline(compiled, spec);
  std::printf("schedule: %s\n%s", config.ToString().c_str(),
              sim::RenderTimeline(batch.timeline, batch.num_warps).c_str());
  return 0;
}

int CmdOps() {
  std::printf("%-16s %-12s %8s %8s %8s %8s\n", "name", "family", "batch", "M",
              "N", "K");
  for (const schedule::GemmOp& op : workloads::BenchmarkOps()) {
    std::printf("%-16s %-12s %8ld %8ld %8ld %8ld\n", op.name.c_str(),
                schedule::OpFamilyName(op.family), op.batch, op.m, op.n, op.k);
  }
  return 0;
}

int CmdModels() {
  for (const workloads::ModelGraph& model : workloads::Models()) {
    int64_t flops = 0;
    for (const workloads::LayerOp& layer : model.ops) {
      flops += layer.count * layer.op.Flops();
    }
    std::printf("%-12s %3zu distinct ops, %6.1f GFLOP, %5.1f MB elementwise "
                "traffic (fused)\n",
                model.name.c_str(), model.ops.size(),
                static_cast<double>(flops) / 1e9,
                model.ewise_bytes_fused / 1e6);
  }
  return 0;
}

int CmdParse(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "expected a file path\n");
    return 1;
  }
  std::ifstream file(argv[2]);
  if (!file) {
    std::fprintf(stderr, "cannot open '%s'\n", argv[2]);
    return 1;
  }
  std::ostringstream content;
  content << file.rdbuf();
  try {
    ir::Stmt program = ir::ParseStmt(content.str());
    std::string reprinted = ir::ToString(program);
    std::printf("%s", reprinted.c_str());
    std::fprintf(stderr, "round-trip: %s\n",
                 reprinted == content.str() ? "exact" : "normalized");
    return 0;
  } catch (const CheckError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') { out += "\\n"; continue; }
    out += c;
  }
  out += '"';
  return out;
}

int CmdVerify(int argc, char** argv) {
  bool json = false;
  std::vector<char*> positional;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty()) {
    std::fprintf(stderr, "expected a file path\n");
    return 1;
  }
  const char* path = positional[0];
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open '%s'\n", path);
    return 1;
  }
  std::ostringstream content;
  content << file.rdbuf();
  ir::Stmt program;
  try {
    program = ir::ParseStmt(content.str());
  } catch (const CheckError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  verify::VerifyResult result = verify::VerifyProgram(program);
  if (json) {
    size_t errors = 0;
    for (const verify::Diagnostic& d : result.diagnostics) {
      if (d.severity == verify::Severity::kError) ++errors;
    }
    std::printf(
        "{\"command\": \"verify\", \"file\": %s, \"clean\": %s, "
        "\"errors\": %zu, \"step_limit_reached\": %s,\n \"diagnostics\": "
        "%s}\n",
        JsonString(path).c_str(), result.Clean() ? "true" : "false", errors,
        result.reached_step_limit ? "true" : "false",
        verify::DiagnosticsToJson(result.diagnostics).c_str());
    return result.HasErrors() ? 1 : 0;
  }
  if (result.Clean()) {
    std::printf("%s: verified, no pipeline-synchronization issues\n", path);
    return 0;
  }
  std::printf("%s", result.Render().c_str());
  if (result.reached_step_limit) {
    std::fprintf(stderr, "warning: step limit reached, verdict incomplete\n");
  }
  return result.HasErrors() ? 1 : 0;
}

int CmdLint(int argc, char** argv) {
  // lint WORKLOAD|FILE [--json] [--no-swizzle]; a readable file is linted
  // as textual IR (source spans in diagnostics), anything else resolves
  // as a workload and lints the compiled best schedule.
  bool json = false;
  analysis::LintOptions options;
  std::vector<char*> positional;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--no-swizzle") == 0) {
      options.swizzle = false;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty()) {
    std::fprintf(stderr,
                 "expected a workload (see `alcop_cli ops`), M N K [batch], "
                 "or a .tir file\n");
    return 1;
  }

  std::string subject = positional[0];
  std::string schedule_str;
  ir::Stmt program;
  std::ifstream file(positional[0]);
  if (file) {
    std::ostringstream content;
    content << file.rdbuf();
    try {
      program = ir::ParseStmt(content.str());
    } catch (const CheckError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  } else {
    target::GpuSpec spec = target::AmpereSpec();
    schedule::GemmOp op;
    if (!ParseWorkload(positional, &op)) return 1;
    schedule::ScheduleConfig config = BestConfig(op, spec, 16);
    sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);
    program = compiled.transformed.stmt;
    subject = op.name;
    schedule_str = config.ToString();
    options.swizzle = config.swizzle;
  }

  analysis::LintResult result = analysis::LintProgram(program, options);

  if (json) {
    std::ostringstream out;
    out << "{\"command\": \"lint\", \"subject\": " << JsonString(subject)
        << ", \"schedule\": " << JsonString(schedule_str)
        << ", \"clean\": " << (result.Clean() ? "true" : "false")
        << ", \"errors\": " << (result.HasErrors() ? "true" : "false");
    if (result.feasibility.has_value()) {
      const analysis::StaticFeasibility& f = *result.feasibility;
      out << ",\n \"feasibility\": {\"feasible\": "
          << (f.feasible ? "true" : "false")
          << ", \"reason\": " << JsonString(f.reason)
          << ", \"smem_bytes\": " << f.resources.smem_bytes
          << ", \"reg_bytes\": " << f.resources.reg_bytes
          << ", \"warps\": " << f.resources.warps
          << ", \"threadblocks_per_sm\": " << f.occupancy.threadblocks_per_sm
          << ", \"limiter\": "
          << JsonString(target::LimiterName(f.occupancy.limiter)) << "}";
    }
    if (result.bank.has_value()) {
      const analysis::BankReport& b = *result.bank;
      out << ",\n \"bank\": {\"max_degree\": " << b.max_degree
          << ", \"sim_divisor\": " << JsonDouble(b.sim_divisor)
          << ", \"predicted_lds_read_bytes\": "
          << JsonDouble(b.predicted_lds_read_bytes)
          << ", \"accesses\": " << b.accesses.size() << "}";
    }
    out << ",\n \"passes\": [";
    for (size_t i = 0; i < result.pass_stats.size(); ++i) {
      const analysis::PassStats& p = result.pass_stats[i];
      if (i > 0) out << ", ";
      out << "{\"name\": " << JsonString(p.name)
          << ", \"findings\": " << p.findings
          << ", \"millis\": " << JsonDouble(p.millis) << "}";
    }
    out << "],\n \"diagnostics\": "
        << verify::DiagnosticsToJson(result.diagnostics) << "}";
    std::printf("%s\n", out.str().c_str());
    return result.HasErrors() ? 1 : 0;
  }

  std::printf("lint: %s", subject.c_str());
  if (!schedule_str.empty()) {
    std::printf("  schedule: %s", schedule_str.c_str());
  }
  std::printf("\n");
  for (const analysis::PassStats& p : result.pass_stats) {
    std::printf("  %-20s %3zu finding%s  %7.2f ms\n", p.name.c_str(),
                p.findings, p.findings == 1 ? " " : "s", p.millis);
  }
  if (result.feasibility.has_value()) {
    const analysis::StaticFeasibility& f = *result.feasibility;
    if (f.feasible) {
      std::printf("feasibility: fits, %d threadblock(s)/SM (limiter: %s); "
                  "%ld B shared, %ld B registers, %d warps\n",
                  f.occupancy.threadblocks_per_sm,
                  target::LimiterName(f.occupancy.limiter),
                  f.resources.smem_bytes, f.resources.reg_bytes,
                  f.resources.warps);
    } else {
      std::printf("feasibility: %s\n", f.reason.c_str());
    }
  }
  if (result.bank.has_value()) {
    const analysis::BankReport& b = *result.bank;
    std::printf("bank: %zu shared access(es), max conflict degree %d "
                "(%s), LDS divisor %.1f, predicted %.1f MB shared->reg\n",
                b.accesses.size(), b.max_degree,
                options.swizzle ? "swizzled" : "unswizzled", b.sim_divisor,
                b.predicted_lds_read_bytes / 1e6);
  }
  if (result.Clean()) {
    std::printf("clean: no findings\n");
  } else {
    std::printf("%s", result.Render().c_str());
  }
  return result.HasErrors() ? 1 : 0;
}

int CmdProfile(int argc, char** argv) {
  // Split flags from positionals:
  // profile WORKLOAD [--json] [--trace FILE] [--counters].
  bool json = false;
  bool counters = false;
  std::string trace_path;
  std::vector<char*> positional;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--counters") == 0) {
      counters = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace expects an output file\n");
        return 1;
      }
      trace_path = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op;
  if (!ParseWorkload(positional, &op)) return 1;

  // Tracing must be on before any instrumented phase runs so the exported
  // file carries the whole pipeline: tuner rounds, compile phases, replay.
  obs::SetTraceEnabled(true);
  obs::ClearTrace();

  schedule::ScheduleConfig config = BestConfig(op, spec, 16);
  sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);
  // One program build serves timing, PMU counters and the profiled
  // timeline; the kernel is never re-simulated for the extra outputs.
  sim::SimProgram program = sim::BuildSimProgram(compiled, spec);
  sim::ReplayArena arena;
  sim::KernelPmu pmu;
  sim::KernelTiming timing = sim::ReplaySimProgram(program, &arena, &pmu);
  sim::BatchTimeline batch = sim::ReplayTimeline(program, &arena);

  obs::KernelProfile profile = obs::ProfileBatch(batch);
  obs::AttachModelVerdict(&profile, op, config, spec);

  if (!trace_path.empty()) {
    obs::ChromeTraceWriter writer;
    obs::AppendHostSpans(&writer, obs::CollectTraceSpans());
    obs::AppendSimTimeline(&writer, batch.timeline, batch.num_warps);
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", trace_path.c_str());
      return 1;
    }
    out << writer.ToJson();
    std::fprintf(stderr,
                 "wrote %zu trace events to %s (load in chrome://tracing or "
                 "ui.perfetto.dev)\n",
                 writer.num_events(), trace_path.c_str());
  }

  if (json) {
    std::printf("%s\n", obs::ProfileToJson(profile, &timing, &pmu).c_str());
    return 0;
  }
  std::printf("workload: %s  schedule: %s\n", op.name.c_str(),
              config.ToString().c_str());
  std::printf("timing: %.0f cycles, %.1f us, %.1f TFLOP/s\n", timing.cycles,
              timing.microseconds, timing.tflops);
  std::printf("%s", obs::RenderProfile(profile).c_str());
  if (counters) {
    std::printf("\n%s", sim::RenderPmu(pmu).c_str());
  }
  std::printf("\n--- host metrics ---\n%s",
              obs::Registry::Global().RenderText().c_str());
  return 0;
}

int CmdCalibrate(int argc, char** argv) {
  bool json = false;
  bool fit = false;
  size_t stride = 8;
  std::vector<char*> positional;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--fit") == 0) {
      fit = true;
    } else if (std::strcmp(argv[i], "--stride") == 0 && i + 1 < argc) {
      stride = static_cast<size_t>(std::atoll(argv[++i]));
    } else {
      positional.push_back(argv[i]);
    }
  }
  target::GpuSpec spec = target::AmpereSpec();
  if (fit) {
    // Re-derive the spec's checked-in model corrections from the Fig. 10
    // suite (strided sweep; the fit zeroes existing corrections first, so
    // it is idempotent). Prints the fitted constants and whether they
    // match what the spec ships.
    perfmodel::ModelFitReport report = perfmodel::FitModelCorrections(
        workloads::BenchmarkOps(), spec, stride);
    if (json) {
      std::printf("%s\n", perfmodel::ModelFitReportToJson(report).c_str());
      return 0;
    }
    std::printf("model fit over %lld sweep samples (stride %zu):\n",
                static_cast<long long>(report.composition_samples), stride);
    for (const perfmodel::TermFitReport& term : report.terms) {
      std::printf(
          "  %-10s scale %.4f bias %.1f  (mean rel-err %.4f -> %.4f, "
          "p90 %.4f, %lld samples)\n",
          term.name.c_str(), term.fit.scale, term.fit.bias_cycles,
          term.mean_rel_error_before, term.mean_rel_error_after,
          term.p90_rel_error_after, static_cast<long long>(term.samples));
    }
    std::printf(
        "  composition: iter_overhead %.0f dep_scale %.2f fill_scale %.2f "
        "inner_latency %.0f  (objective %.4f, mean |log err| %.4f)\n",
        report.fit.iter_overhead_cycles, report.fit.dep_latency_scale,
        report.fit.fill_scale, report.fit.inner_latency_cycles,
        report.composition_objective, report.composition_mean_log_error);
    const target::ModelFit& shipped = spec.model_fit;
    bool matches =
        std::fabs(report.fit.t_compute.scale - shipped.t_compute.scale) <
            1e-3 &&
        std::fabs(report.fit.t_reg_load.scale - shipped.t_reg_load.scale) <
            1e-3 &&
        report.fit.iter_overhead_cycles == shipped.iter_overhead_cycles &&
        report.fit.dep_latency_scale == shipped.dep_latency_scale &&
        report.fit.fill_scale == shipped.fill_scale &&
        report.fit.inner_latency_cycles == shipped.inner_latency_cycles;
    std::printf("  spec '%s' checked-in constants: %s\n", spec.name.c_str(),
                matches ? "match" : "STALE (update target/gpu_spec.cc)");
    return matches ? 0 : 1;
  }
  schedule::GemmOp op;
  if (!ParseWorkload(positional, &op)) return 1;

  schedule::ScheduleConfig config = BestConfig(op, spec, 16);
  perfmodel::CalibrationResult result =
      perfmodel::CalibrateConfig(op, config, spec);
  if (!result.feasible) {
    std::fprintf(stderr, "infeasible schedule: %s\n", result.reason.c_str());
    return 1;
  }
  if (json) {
    std::printf("%s\n", perfmodel::CalibrationToJson(result).c_str());
    return 0;
  }
  std::printf("workload: %s  schedule: %s\n", op.name.c_str(),
              config.ToString().c_str());
  std::printf("cycles: %.0f measured, %.0f analytical\n",
              result.measured_cycles, result.predicted_cycles);
  std::printf("%-14s %14s %14s %9s\n", "term", "analytical", "measured",
              "rel-err");
  for (const perfmodel::TermError& term : result.terms) {
    std::printf("%-14s %14.1f %14.1f %8.1f%%\n", term.name.c_str(),
                term.analytical, term.measured, term.rel_error * 100.0);
  }
  const perfmodel::RooflinePoint& r = result.roofline;
  std::printf("roofline: %s-bound; AI %.1f dram / %.1f llc / %.1f lds "
              "flop/B; %.0f of %.0f flop/cycle (%.0f%% of roof)\n",
              r.regime.c_str(), r.ai_dram, r.ai_llc, r.ai_lds,
              r.attained_flops_per_cycle, r.roof_flops_per_cycle,
              r.efficiency * 100.0);
  std::printf("bottleneck model: %s-limited (roofline %s)\n",
              result.bottleneck_limiter.c_str(),
              result.roofline_agrees ? "agrees" : "disagrees");
  std::printf("stall profiler: %s (%s)\n", result.profile_verdict.c_str(),
              result.profile_agrees ? "agrees" : "disagrees");
  return 0;
}

int CmdCache(int argc, char** argv) {
  // cache [stats|clear|persist|load] [--json] [--path FILE]
  bool json = false;
  std::string path;
  std::vector<char*> positional;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--path") == 0 && i + 1 < argc) {
      path = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  std::string action = positional.empty() ? "stats" : positional[0];
  if (path.empty()) path = serving::DefaultCachePath();
  target::GpuSpec spec = target::AmpereSpec();

  if (action == "stats") {
    sim::SimCacheStats s = sim::GetSimCacheStats();
    size_t tunings = tuner::TuningStore::Global().Size();
    if (json) {
      // The serving block mirrors the daemon's `stats` response schema
      // (per-lane latency histograms + inflight); in a fresh CLI process
      // the histograms are empty, but the shape matches what an
      // in-process server (tests, benches) populates.
      obs::Registry& registry = obs::Registry::Global();
      auto lane_json = [&registry](const char* lane) {
        obs::HistogramData data =
            registry
                .GetHistogram(std::string("serving.request.latency.us|lane=") +
                              lane)
                .Data();
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "{\"count\": %llu, \"p50_us\": %g, \"p99_us\": %g, "
                      "\"p999_us\": %g, \"max_us\": %g}",
                      (unsigned long long)data.count,
                      obs::HistogramQuantile(data, 0.5),
                      obs::HistogramQuantile(data, 0.99),
                      obs::HistogramQuantile(data, 0.999), data.max);
        return std::string(buf);
      };
      std::printf(
          "{\"command\": \"cache\", \"action\": \"stats\", "
          "\"path\": %s,\n \"timing\": {\"hits\": %llu, \"misses\": %llu, "
          "\"entries\": %llu, \"bytes\": %llu},\n \"program\": {\"hits\": "
          "%llu, \"misses\": %llu, \"entries\": %llu, \"skeletons\": %llu, "
          "\"bytes\": %llu, \"skeleton_bytes\": %llu},\n \"resident_bytes\": "
          "%llu, \"budget_bytes\": %llu, \"evictions\": %llu,\n \"disk\": "
          "{\"hits\": %llu, \"misses\": %llu, \"load_bytes\": %llu},\n "
          "\"stored_tunings\": %zu,\n \"serving\": {\"inflight\": %g, "
          "\"latency\": {\"fast\": %s, \"slow\": %s}}}\n",
          JsonString(path).c_str(), (unsigned long long)s.hits,
          (unsigned long long)s.misses, (unsigned long long)s.entries,
          (unsigned long long)s.timing_bytes, (unsigned long long)s.program_hits,
          (unsigned long long)s.program_misses,
          (unsigned long long)s.program_entries,
          (unsigned long long)s.program_skeletons,
          (unsigned long long)s.program_bytes,
          (unsigned long long)s.skeleton_bytes,
          (unsigned long long)s.resident_bytes,
          (unsigned long long)s.budget_bytes, (unsigned long long)s.evictions,
          (unsigned long long)s.disk_hits, (unsigned long long)s.disk_misses,
          (unsigned long long)s.disk_load_bytes, tunings,
          registry.GetGauge("serving.inflight").Value(),
          lane_json("fast").c_str(), lane_json("slow").c_str());
      return 0;
    }
    std::printf("timing layer:  %llu entries, %llu hits / %llu misses\n",
                (unsigned long long)s.entries, (unsigned long long)s.hits,
                (unsigned long long)s.misses);
    std::printf("program layer: %llu entries sharing %llu skeletons, %llu "
                "hits / %llu misses\n",
                (unsigned long long)s.program_entries,
                (unsigned long long)s.program_skeletons,
                (unsigned long long)s.program_hits,
                (unsigned long long)s.program_misses);
    std::printf("resident: %llu B (budget %llu B, %llu evictions)\n",
                (unsigned long long)s.resident_bytes,
                (unsigned long long)s.budget_bytes,
                (unsigned long long)s.evictions);
    std::printf("disk: %llu hits / %llu misses, %llu B loaded\n",
                (unsigned long long)s.disk_hits,
                (unsigned long long)s.disk_misses,
                (unsigned long long)s.disk_load_bytes);
    std::printf("stored tunings: %zu\n", tunings);
    std::printf("path: %s\n", path.empty() ? "(unset)" : path.c_str());
    return 0;
  }

  if (action == "clear") {
    sim::ResetSimCache();
    tuner::TuningStore::Global().Clear();
    bool removed = !path.empty() && std::remove(path.c_str()) == 0;
    if (json) {
      std::printf(
          "{\"command\": \"cache\", \"action\": \"clear\", \"path\": %s, "
          "\"removed_file\": %s}\n",
          JsonString(path).c_str(), removed ? "true" : "false");
    } else {
      std::printf("cleared in-memory caches%s\n",
                  removed ? (", removed " + path).c_str() : "");
    }
    return 0;
  }

  if (action == "persist" || action == "load") {
    if (path.empty()) {
      std::fprintf(stderr,
                   "no cache path: pass --path FILE or set ALCOP_CACHE_DIR\n");
      return 1;
    }
    serving::PersistStats stats = action == "persist"
                                      ? serving::SaveCache(path, spec)
                                      : serving::LoadCache(path, spec);
    if (json) {
      std::printf(
          "{\"command\": \"cache\", \"action\": %s, \"path\": %s, \"ok\": "
          "%s, \"error\": %s,\n \"bytes\": %llu, \"timings\": %llu, "
          "\"programs\": %llu, \"skeletons\": %llu, \"tunings\": %llu, "
          "\"skipped\": %llu}\n",
          JsonString(action).c_str(), JsonString(path).c_str(),
          stats.ok ? "true" : "false", JsonString(stats.error).c_str(),
          (unsigned long long)stats.bytes, (unsigned long long)stats.timings,
          (unsigned long long)stats.programs,
          (unsigned long long)stats.skeletons,
          (unsigned long long)stats.tunings,
          (unsigned long long)stats.skipped);
      return stats.ok ? 0 : 1;
    }
    if (!stats.ok) {
      std::fprintf(stderr, "cache %s failed: %s\n", action.c_str(),
                   stats.error.c_str());
      return 1;
    }
    std::printf("%s %s: %llu B, %llu timings, %llu programs, %llu skeletons, "
                "%llu tunings (%llu skipped)\n",
                action == "persist" ? "wrote" : "loaded", path.c_str(),
                (unsigned long long)stats.bytes,
                (unsigned long long)stats.timings,
                (unsigned long long)stats.programs,
                (unsigned long long)stats.skeletons,
                (unsigned long long)stats.tunings,
                (unsigned long long)stats.skipped);
    return 0;
  }

  std::fprintf(stderr, "unknown cache action '%s' (stats|clear|persist|load)\n",
               action.c_str());
  return 1;
}

int CmdServe(int argc, char** argv) {
  serving::ServerOptions options;
  options.spec = target::AmpereSpec();
  uint64_t budget = 0;
  std::string log_file;
  std::vector<char*> positional;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      options.default_trials = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--no-warm") == 0) {
      options.warm_start = false;
    } else if (std::strcmp(argv[i], "--cache") == 0 && i + 1 < argc) {
      options.cache_path = argv[++i];
    } else if (std::strcmp(argv[i], "--no-persist") == 0) {
      options.persist_on_shutdown = false;
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      budget = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--http") == 0 && i + 1 < argc) {
      options.http_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--access-log") == 0 && i + 1 < argc) {
      options.access_log_path = argv[++i];
    } else if (std::strcmp(argv[i], "--flight-depth") == 0 && i + 1 < argc) {
      options.flight_depth = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--snapshot-interval") == 0 &&
               i + 1 < argc) {
      options.snapshot_interval_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--watchdog-ms") == 0 && i + 1 < argc) {
      options.watchdog_stall_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--log-level") == 0 && i + 1 < argc) {
      obs::StructuredLog::Global().SetLevel(
          obs::ParseLogLevel(argv[++i], obs::LogLevel::kInfo));
    } else if (std::strcmp(argv[i], "--log-file") == 0 && i + 1 < argc) {
      log_file = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty()) {
    std::fprintf(stderr, "expected a unix socket path\n");
    return 1;
  }
  options.socket_path = positional[0];
  if (budget != 0) sim::SetSimCacheBudgetBytes(budget);

  // The daemon's terminal chatter is the structured log itself: every
  // line the ring (and any --log-file sink) sees is echoed to stderr.
  obs::StructuredLog::Global().SetStderrEcho(true);
  if (!log_file.empty() && !obs::StructuredLog::Global().OpenFile(log_file)) {
    std::fprintf(stderr, "alcopd: cannot open log file %s\n",
                 log_file.c_str());
    return 1;
  }

  serving::Server server(std::move(options));
  std::string error;
  if (!server.Start(&error)) {
    obs::Log(obs::LogLevel::kError, "alcopd", "start failed",
             obs::LogFields().Str("error", error));
    return 1;
  }
  obs::Log(obs::LogLevel::kInfo, "alcopd", "listening",
           obs::LogFields()
               .Str("socket", server.options().socket_path)
               .Str("cache", server.options().cache_path.empty()
                                 ? "disabled"
                                 : server.options().cache_path));
  if (server.http_port() >= 0) {
    obs::Log(obs::LogLevel::kInfo, "alcopd", "http front end",
             obs::LogFields()
                 .Str("address",
                      "127.0.0.1:" + std::to_string(server.http_port()))
                 .Str("endpoints",
                      "/metrics /healthz /debug/* POST /v1/<method>"));
  }
  server.Wait();
  server.Stop();
  obs::Log(obs::LogLevel::kInfo, "alcopd", "exit",
           obs::LogFields().Uint("requests", server.requests_served()));
  obs::StructuredLog::Global().CloseFile();
  return 0;
}

// "128,64,32" -> JSON "[128,64,32]"; empty on malformed input.
std::string TripleToJson(const char* text) {
  long long a = 0, b = 0, c = 0;
  if (std::sscanf(text, "%lld,%lld,%lld", &a, &b, &c) != 3 || a <= 0 ||
      b <= 0 || c <= 0) {
    return "";
  }
  std::ostringstream out;
  out << "[" << a << "," << b << "," << c << "]";
  return out.str();
}

int CmdClient(int argc, char** argv) {
  if (argc < 4) {
    std::fprintf(stderr,
                 "usage: alcop_cli client SOCKET METHOD [...] (see header "
                 "comment)\n");
    return 1;
  }
  const char* socket_path = argv[2];
  std::string method = argv[3];
  std::string payload;
  if (method[0] == '{') {
    payload = method;  // raw protocol JSON, sent verbatim
  } else if (method == "ping" || method == "stats" || method == "persist" ||
             method == "load" || method == "shutdown") {
    payload = "{\"id\":1,\"method\":\"" + method + "\"}";
  } else if (method == "debug") {
    // client SOCKET debug [requests|timeseries|log|trace] [N]
    //   [--client C] [--lane L] [--outcome O] [--metric M]
    std::string what = "requests";
    std::ostringstream extra;
    long long n = 0;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--client") == 0 && i + 1 < argc) {
        extra << ",\"client\":\"" << argv[++i] << "\"";
      } else if (std::strcmp(argv[i], "--lane") == 0 && i + 1 < argc) {
        extra << ",\"lane\":\"" << argv[++i] << "\"";
      } else if (std::strcmp(argv[i], "--outcome") == 0 && i + 1 < argc) {
        extra << ",\"outcome\":\"" << argv[++i] << "\"";
      } else if (std::strcmp(argv[i], "--metric") == 0 && i + 1 < argc) {
        extra << ",\"metric\":\"" << argv[++i] << "\"";
      } else if (std::isdigit(static_cast<unsigned char>(argv[i][0]))) {
        n = std::atoll(argv[i]);
      } else {
        what = argv[i];
      }
    }
    std::ostringstream out;
    out << "{\"id\":1,\"method\":\"debug\",\"what\":\"" << what << "\"";
    if (n > 0) out << ",\"n\":" << n;
    out << extra.str() << "}";
    payload = out.str();
  } else if (method == "tune" || method == "compile" || method == "profile") {
    std::string tb, warp;
    int smem = 0, reg = 0, split_k = 0;
    long long trials = 0;
    bool no_warm = false, force = false;
    std::vector<char*> positional;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--tb") == 0 && i + 1 < argc) {
        tb = TripleToJson(argv[++i]);
        if (tb.empty()) {
          std::fprintf(stderr, "--tb expects M,N,K\n");
          return 1;
        }
      } else if (std::strcmp(argv[i], "--warp") == 0 && i + 1 < argc) {
        warp = TripleToJson(argv[++i]);
        if (warp.empty()) {
          std::fprintf(stderr, "--warp expects M,N,K\n");
          return 1;
        }
      } else if (std::strcmp(argv[i], "--smem") == 0 && i + 1 < argc) {
        smem = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--reg") == 0 && i + 1 < argc) {
        reg = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--split-k") == 0 && i + 1 < argc) {
        split_k = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
        trials = std::atoll(argv[++i]);
      } else if (std::strcmp(argv[i], "--no-warm") == 0) {
        no_warm = true;
      } else if (std::strcmp(argv[i], "--force") == 0) {
        force = true;
      } else {
        positional.push_back(argv[i]);
      }
    }
    if (positional.size() < 3) {
      std::fprintf(stderr, "expected M N K [batch]\n");
      return 1;
    }
    long long m = std::atoll(positional[0]);
    long long n = std::atoll(positional[1]);
    long long k = std::atoll(positional[2]);
    long long batch = positional.size() > 3 ? std::atoll(positional[3]) : 1;
    std::ostringstream out;
    out << "{\"id\":1,\"method\":\"" << method << "\",\"family\":\""
        << (batch > 1 ? "batch_matmul" : "matmul") << "\",\"batch\":" << batch
        << ",\"m\":" << m << ",\"n\":" << n << ",\"k\":" << k;
    if (method == "tune") {
      if (trials > 0) out << ",\"trials\":" << trials;
      if (no_warm) out << ",\"warm\":false";
      if (force) out << ",\"force\":true";
    } else {
      if (tb.empty()) {
        std::fprintf(stderr, "%s needs --tb M,N,K\n", method.c_str());
        return 1;
      }
      out << ",\"config\":{\"tb\":" << tb;
      if (!warp.empty()) out << ",\"warp\":" << warp;
      if (smem > 0) out << ",\"smem\":" << smem;
      if (reg > 0) out << ",\"reg\":" << reg;
      if (split_k > 0) out << ",\"split_k\":" << split_k;
      out << "}";
    }
    out << "}";
    payload = out.str();
  } else {
    std::fprintf(stderr, "unknown client method '%s'\n", method.c_str());
    return 1;
  }

  serving::Client client;
  std::string error;
  if (!client.Connect(socket_path, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::optional<std::string> response = client.CallRaw(payload);
  if (!response.has_value()) {
    std::fprintf(stderr, "no response from %s\n", socket_path);
    return 1;
  }
  std::printf("%s\n", response->c_str());
  std::optional<serving::JsonValue> parsed = serving::ParseJson(*response);
  const serving::JsonValue* ok =
      parsed.has_value() ? parsed->Find("ok") : nullptr;
  return ok != nullptr && ok->BoolOr(false) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: alcop_cli compile|tune|timeline|profile|calibrate|"
                 "ops|models|parse|verify|lint|cache|serve|client ...\n");
    return 1;
  }
  const char* cmd = argv[1];
  if (std::strcmp(cmd, "cache") == 0) return CmdCache(argc, argv);
  if (std::strcmp(cmd, "serve") == 0) return CmdServe(argc, argv);
  if (std::strcmp(cmd, "client") == 0) return CmdClient(argc, argv);
  if (std::strcmp(cmd, "lint") == 0) return CmdLint(argc, argv);
  if (std::strcmp(cmd, "profile") == 0) return CmdProfile(argc, argv);
  if (std::strcmp(cmd, "calibrate") == 0) return CmdCalibrate(argc, argv);
  if (std::strcmp(cmd, "compile") == 0) return CmdCompile(argc, argv);
  if (std::strcmp(cmd, "tune") == 0) return CmdTune(argc, argv);
  if (std::strcmp(cmd, "timeline") == 0) return CmdTimeline(argc, argv);
  if (std::strcmp(cmd, "ops") == 0) return CmdOps();
  if (std::strcmp(cmd, "models") == 0) return CmdModels();
  if (std::strcmp(cmd, "parse") == 0) return CmdParse(argc, argv);
  if (std::strcmp(cmd, "verify") == 0) return CmdVerify(argc, argv);
  std::fprintf(stderr, "unknown command '%s'\n", cmd);
  return 1;
}
