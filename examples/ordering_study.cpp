// Example: the transformation-ordering study of the paper's Fig. 5.
//
// An elementwise producer f(.) feeds the A operand of a GEMM. Three
// compilation strategies are compared:
//   1. no inlining        — f materializes a full intermediate tensor;
//   2. inline BEFORE pipelining — f fuses into the Global->Shared copy,
//      which destroys the copy's asynchrony: detection (rule 1) must
//      refuse to pipeline the shared buffer;
//   3. inline AFTER pipelining (ALCOP's ordering) — A is cache-read
//      directly and f fuses into the Shared->Register copy, keeping both
//      pipelines legal.
#include <cstdio>

#include "pipeline/detect.h"
#include "sim/launch.h"
#include "target/gpu_spec.h"

using namespace alcop;  // NOLINT(build/namespaces) - example code

namespace {

void Report(const char* label, schedule::InlineOrder order,
            const schedule::GemmOp& op,
            const schedule::ScheduleConfig& config,
            const target::GpuSpec& spec) {
  schedule::Schedule sched(op, config, order);
  pipeline::DetectionResult detection =
      pipeline::AutoPipeline(sched, spec);
  sim::KernelTiming timing = sim::CompileAndSimulate(op, config, spec, order);

  std::printf("%s\n", label);
  for (const char* buffer : {"A_shared", "A_reg"}) {
    const pipeline::DetectionEntry* entry = detection.Find(buffer);
    std::printf("  %-9s: %s%s\n", buffer,
                entry->eligible ? "pipelined" : "refused",
                entry->eligible ? "" : (" -- " + entry->reason).c_str());
  }
  std::printf("  simulated: %.0f cycles (%.1f TFLOP/s)\n\n", timing.cycles,
              timing.tflops);
}

}  // namespace

int main() {
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op = schedule::MakeMatmul("gemm_with_producer", 1024, 768, 3072);
  op.a_producer_op = ir::EwiseOp::kGelu;

  schedule::ScheduleConfig config;
  config.tile = {.tb_m = 128, .tb_n = 128, .tb_k = 32,
                 .warp_m = 64, .warp_n = 64, .warp_k = 16};
  config.smem_stages = 3;
  config.reg_stages = 2;

  std::printf("== Fig. 5 ordering study: GEMM with elementwise producer "
              "f = GELU ==\n\n");
  Report("1. no inlining (standalone f pass, extra global traffic):",
         schedule::InlineOrder::kNone, op, config, spec);
  Report("2. inline before pipelining (case 1 in the paper):",
         schedule::InlineOrder::kBeforePipelining, op, config, spec);
  Report("3. pipeline before inlining (case 2, ALCOP's ordering):",
         schedule::InlineOrder::kAfterPipelining, op, config, spec);
  return 0;
}
