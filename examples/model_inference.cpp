// Example: end-to-end model latency estimation.
//
// Walks a model graph (GPT-2 here), tunes every distinct GEMM-family
// operator with and without pipelining, and prints the per-operator and
// end-to-end latency breakdown — the workflow behind Table III.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "target/gpu_spec.h"
#include "tuner/strategy.h"
#include "workloads/models.h"

using namespace alcop;  // NOLINT(build/namespaces) - example code

namespace {

double Tuned(const schedule::GemmOp& op, const target::GpuSpec& spec,
             const tuner::SpaceOptions& options) {
  tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec, options);
  if (task.space.empty()) return 0.0;
  double best = tuner::AnalyticalRanking(task, 12).BestInFirstK(12);
  return std::isfinite(best) ? best : 0.0;
}

}  // namespace

int main() {
  target::GpuSpec spec = target::AmpereSpec();
  const workloads::ModelGraph& model = workloads::FindModel("GPT-2");

  std::printf("== %s inference on %s ==\n\n", model.name.c_str(),
              spec.name.c_str());
  std::printf("%-14s %6s | %12s %12s %9s\n", "operator", "count",
              "TVM (us)", "ALCOP (us)", "speedup");

  double tvm_total = 0.0, alcop_total = 0.0;
  for (const workloads::LayerOp& layer : model.ops) {
    double tvm =
        Tuned(layer.op, spec, tuner::SpaceOptions::NoPipelining());
    double alcop = std::min(tvm, Tuned(layer.op, spec, tuner::SpaceOptions()));
    tvm_total += layer.count * tvm;
    alcop_total += layer.count * alcop;
    std::printf("%-14s %6d | %12.1f %12.1f %8.2fx\n",
                layer.op.name.c_str(), layer.count,
                spec.CyclesToUs(layer.count * tvm),
                spec.CyclesToUs(layer.count * alcop), tvm / alcop);
  }

  double ewise = model.ewise_bytes_fused / spec.dram_bw_bytes_per_cycle;
  double launches = model.launches_fused * spec.launch_overhead_cycles;
  std::printf("%-14s %6s | %12.1f %12.1f\n", "non-GEMM", "",
              spec.CyclesToUs(ewise + launches),
              spec.CyclesToUs(ewise + launches));

  double tvm_e2e = tvm_total + ewise + launches;
  double alcop_e2e = alcop_total + ewise + launches;
  std::printf("\nend-to-end: TVM %.0f us, ALCOP %.0f us -> %.2fx\n",
              spec.CyclesToUs(tvm_e2e), spec.CyclesToUs(alcop_e2e),
              tvm_e2e / alcop_e2e);
  return 0;
}
