# Empty dependencies file for alcop_tests.
# This may be replaced when dependencies are built.
