
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cc" "tests/CMakeFiles/alcop_tests.dir/analysis_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/analysis_test.cc.o.d"
  "/root/repo/tests/conv_ref_test.cc" "tests/CMakeFiles/alcop_tests.dir/conv_ref_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/conv_ref_test.cc.o.d"
  "/root/repo/tests/desim_test.cc" "tests/CMakeFiles/alcop_tests.dir/desim_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/desim_test.cc.o.d"
  "/root/repo/tests/detect_test.cc" "tests/CMakeFiles/alcop_tests.dir/detect_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/detect_test.cc.o.d"
  "/root/repo/tests/executor_test.cc" "tests/CMakeFiles/alcop_tests.dir/executor_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/executor_test.cc.o.d"
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/alcop_tests.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/fuzz_test.cc.o.d"
  "/root/repo/tests/golden_ir_test.cc" "tests/CMakeFiles/alcop_tests.dir/golden_ir_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/golden_ir_test.cc.o.d"
  "/root/repo/tests/ir_expr_test.cc" "tests/CMakeFiles/alcop_tests.dir/ir_expr_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/ir_expr_test.cc.o.d"
  "/root/repo/tests/ir_stmt_test.cc" "tests/CMakeFiles/alcop_tests.dir/ir_stmt_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/ir_stmt_test.cc.o.d"
  "/root/repo/tests/lower_test.cc" "tests/CMakeFiles/alcop_tests.dir/lower_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/lower_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/alcop_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/perfmodel_test.cc" "tests/CMakeFiles/alcop_tests.dir/perfmodel_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/perfmodel_test.cc.o.d"
  "/root/repo/tests/pipeline_correctness_test.cc" "tests/CMakeFiles/alcop_tests.dir/pipeline_correctness_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/pipeline_correctness_test.cc.o.d"
  "/root/repo/tests/records_test.cc" "tests/CMakeFiles/alcop_tests.dir/records_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/records_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/alcop_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/support_test.cc" "tests/CMakeFiles/alcop_tests.dir/support_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/support_test.cc.o.d"
  "/root/repo/tests/traffic_report_test.cc" "tests/CMakeFiles/alcop_tests.dir/traffic_report_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/traffic_report_test.cc.o.d"
  "/root/repo/tests/transform_test.cc" "tests/CMakeFiles/alcop_tests.dir/transform_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/transform_test.cc.o.d"
  "/root/repo/tests/tuner_test.cc" "tests/CMakeFiles/alcop_tests.dir/tuner_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/tuner_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/alcop_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/alcop_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/alcop.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
