# Empty dependencies file for table3_end2end.
# This may be replaced when dependencies are built.
