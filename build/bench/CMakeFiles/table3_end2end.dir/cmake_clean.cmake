file(REMOVE_RECURSE
  "CMakeFiles/table3_end2end.dir/table3_end2end.cc.o"
  "CMakeFiles/table3_end2end.dir/table3_end2end.cc.o.d"
  "table3_end2end"
  "table3_end2end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_end2end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
