file(REMOVE_RECURSE
  "CMakeFiles/fig10_single_op.dir/fig10_single_op.cc.o"
  "CMakeFiles/fig10_single_op.dir/fig10_single_op.cc.o.d"
  "fig10_single_op"
  "fig10_single_op.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_single_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
