# Empty dependencies file for fig10_single_op.
# This may be replaced when dependencies are built.
