# Empty dependencies file for bench_compiler_micro.
# This may be replaced when dependencies are built.
