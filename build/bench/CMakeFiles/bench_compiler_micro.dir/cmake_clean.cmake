file(REMOVE_RECURSE
  "CMakeFiles/bench_compiler_micro.dir/bench_compiler_micro.cc.o"
  "CMakeFiles/bench_compiler_micro.dir/bench_compiler_micro.cc.o.d"
  "bench_compiler_micro"
  "bench_compiler_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compiler_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
