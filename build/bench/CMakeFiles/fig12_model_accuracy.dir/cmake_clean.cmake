file(REMOVE_RECURSE
  "CMakeFiles/fig12_model_accuracy.dir/fig12_model_accuracy.cc.o"
  "CMakeFiles/fig12_model_accuracy.dir/fig12_model_accuracy.cc.o.d"
  "fig12_model_accuracy"
  "fig12_model_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
