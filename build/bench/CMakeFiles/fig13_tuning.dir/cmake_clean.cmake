file(REMOVE_RECURSE
  "CMakeFiles/fig13_tuning.dir/fig13_tuning.cc.o"
  "CMakeFiles/fig13_tuning.dir/fig13_tuning.cc.o.d"
  "fig13_tuning"
  "fig13_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
