# Empty compiler generated dependencies file for fig13_tuning.
# This may be replaced when dependencies are built.
