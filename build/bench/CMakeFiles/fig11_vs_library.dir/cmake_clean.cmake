file(REMOVE_RECURSE
  "CMakeFiles/fig11_vs_library.dir/fig11_vs_library.cc.o"
  "CMakeFiles/fig11_vs_library.dir/fig11_vs_library.cc.o.d"
  "fig11_vs_library"
  "fig11_vs_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_vs_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
