# Empty dependencies file for fig11_vs_library.
# This may be replaced when dependencies are built.
