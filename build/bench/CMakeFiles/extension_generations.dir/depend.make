# Empty dependencies file for extension_generations.
# This may be replaced when dependencies are built.
