file(REMOVE_RECURSE
  "CMakeFiles/extension_generations.dir/extension_generations.cc.o"
  "CMakeFiles/extension_generations.dir/extension_generations.cc.o.d"
  "extension_generations"
  "extension_generations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
