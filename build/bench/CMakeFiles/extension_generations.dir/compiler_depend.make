# Empty compiler generated dependencies file for extension_generations.
# This may be replaced when dependencies are built.
