# Empty compiler generated dependencies file for alcop_cli.
# This may be replaced when dependencies are built.
