file(REMOVE_RECURSE
  "CMakeFiles/alcop_cli.dir/alcop_cli.cpp.o"
  "CMakeFiles/alcop_cli.dir/alcop_cli.cpp.o.d"
  "alcop_cli"
  "alcop_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alcop_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
