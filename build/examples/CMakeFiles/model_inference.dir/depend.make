# Empty dependencies file for model_inference.
# This may be replaced when dependencies are built.
