file(REMOVE_RECURSE
  "CMakeFiles/model_inference.dir/model_inference.cpp.o"
  "CMakeFiles/model_inference.dir/model_inference.cpp.o.d"
  "model_inference"
  "model_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
