# Empty dependencies file for autotune_bert.
# This may be replaced when dependencies are built.
