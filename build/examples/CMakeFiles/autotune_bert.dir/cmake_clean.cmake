file(REMOVE_RECURSE
  "CMakeFiles/autotune_bert.dir/autotune_bert.cpp.o"
  "CMakeFiles/autotune_bert.dir/autotune_bert.cpp.o.d"
  "autotune_bert"
  "autotune_bert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_bert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
