file(REMOVE_RECURSE
  "libalcop.a"
)
