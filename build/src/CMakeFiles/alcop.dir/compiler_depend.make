# Empty compiler generated dependencies file for alcop.
# This may be replaced when dependencies are built.
