
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/analysis.cc" "src/CMakeFiles/alcop.dir/ir/analysis.cc.o" "gcc" "src/CMakeFiles/alcop.dir/ir/analysis.cc.o.d"
  "/root/repo/src/ir/buffer.cc" "src/CMakeFiles/alcop.dir/ir/buffer.cc.o" "gcc" "src/CMakeFiles/alcop.dir/ir/buffer.cc.o.d"
  "/root/repo/src/ir/expr.cc" "src/CMakeFiles/alcop.dir/ir/expr.cc.o" "gcc" "src/CMakeFiles/alcop.dir/ir/expr.cc.o.d"
  "/root/repo/src/ir/functor.cc" "src/CMakeFiles/alcop.dir/ir/functor.cc.o" "gcc" "src/CMakeFiles/alcop.dir/ir/functor.cc.o.d"
  "/root/repo/src/ir/parser.cc" "src/CMakeFiles/alcop.dir/ir/parser.cc.o" "gcc" "src/CMakeFiles/alcop.dir/ir/parser.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/CMakeFiles/alcop.dir/ir/printer.cc.o" "gcc" "src/CMakeFiles/alcop.dir/ir/printer.cc.o.d"
  "/root/repo/src/ir/simplify.cc" "src/CMakeFiles/alcop.dir/ir/simplify.cc.o" "gcc" "src/CMakeFiles/alcop.dir/ir/simplify.cc.o.d"
  "/root/repo/src/ir/stmt.cc" "src/CMakeFiles/alcop.dir/ir/stmt.cc.o" "gcc" "src/CMakeFiles/alcop.dir/ir/stmt.cc.o.d"
  "/root/repo/src/ir/structural_equal.cc" "src/CMakeFiles/alcop.dir/ir/structural_equal.cc.o" "gcc" "src/CMakeFiles/alcop.dir/ir/structural_equal.cc.o.d"
  "/root/repo/src/perfmodel/analytical.cc" "src/CMakeFiles/alcop.dir/perfmodel/analytical.cc.o" "gcc" "src/CMakeFiles/alcop.dir/perfmodel/analytical.cc.o.d"
  "/root/repo/src/perfmodel/bottleneck.cc" "src/CMakeFiles/alcop.dir/perfmodel/bottleneck.cc.o" "gcc" "src/CMakeFiles/alcop.dir/perfmodel/bottleneck.cc.o.d"
  "/root/repo/src/pipeline/detect.cc" "src/CMakeFiles/alcop.dir/pipeline/detect.cc.o" "gcc" "src/CMakeFiles/alcop.dir/pipeline/detect.cc.o.d"
  "/root/repo/src/pipeline/transform.cc" "src/CMakeFiles/alcop.dir/pipeline/transform.cc.o" "gcc" "src/CMakeFiles/alcop.dir/pipeline/transform.cc.o.d"
  "/root/repo/src/schedule/lower.cc" "src/CMakeFiles/alcop.dir/schedule/lower.cc.o" "gcc" "src/CMakeFiles/alcop.dir/schedule/lower.cc.o.d"
  "/root/repo/src/schedule/schedule.cc" "src/CMakeFiles/alcop.dir/schedule/schedule.cc.o" "gcc" "src/CMakeFiles/alcop.dir/schedule/schedule.cc.o.d"
  "/root/repo/src/schedule/tensor.cc" "src/CMakeFiles/alcop.dir/schedule/tensor.cc.o" "gcc" "src/CMakeFiles/alcop.dir/schedule/tensor.cc.o.d"
  "/root/repo/src/sim/desim.cc" "src/CMakeFiles/alcop.dir/sim/desim.cc.o" "gcc" "src/CMakeFiles/alcop.dir/sim/desim.cc.o.d"
  "/root/repo/src/sim/executor.cc" "src/CMakeFiles/alcop.dir/sim/executor.cc.o" "gcc" "src/CMakeFiles/alcop.dir/sim/executor.cc.o.d"
  "/root/repo/src/sim/launch.cc" "src/CMakeFiles/alcop.dir/sim/launch.cc.o" "gcc" "src/CMakeFiles/alcop.dir/sim/launch.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/CMakeFiles/alcop.dir/sim/memory.cc.o" "gcc" "src/CMakeFiles/alcop.dir/sim/memory.cc.o.d"
  "/root/repo/src/sim/timeline.cc" "src/CMakeFiles/alcop.dir/sim/timeline.cc.o" "gcc" "src/CMakeFiles/alcop.dir/sim/timeline.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/alcop.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/alcop.dir/sim/trace.cc.o.d"
  "/root/repo/src/sim/traffic_report.cc" "src/CMakeFiles/alcop.dir/sim/traffic_report.cc.o" "gcc" "src/CMakeFiles/alcop.dir/sim/traffic_report.cc.o.d"
  "/root/repo/src/support/rng.cc" "src/CMakeFiles/alcop.dir/support/rng.cc.o" "gcc" "src/CMakeFiles/alcop.dir/support/rng.cc.o.d"
  "/root/repo/src/tuner/anneal.cc" "src/CMakeFiles/alcop.dir/tuner/anneal.cc.o" "gcc" "src/CMakeFiles/alcop.dir/tuner/anneal.cc.o.d"
  "/root/repo/src/tuner/feature.cc" "src/CMakeFiles/alcop.dir/tuner/feature.cc.o" "gcc" "src/CMakeFiles/alcop.dir/tuner/feature.cc.o.d"
  "/root/repo/src/tuner/gbt.cc" "src/CMakeFiles/alcop.dir/tuner/gbt.cc.o" "gcc" "src/CMakeFiles/alcop.dir/tuner/gbt.cc.o.d"
  "/root/repo/src/tuner/records.cc" "src/CMakeFiles/alcop.dir/tuner/records.cc.o" "gcc" "src/CMakeFiles/alcop.dir/tuner/records.cc.o.d"
  "/root/repo/src/tuner/space.cc" "src/CMakeFiles/alcop.dir/tuner/space.cc.o" "gcc" "src/CMakeFiles/alcop.dir/tuner/space.cc.o.d"
  "/root/repo/src/tuner/strategy.cc" "src/CMakeFiles/alcop.dir/tuner/strategy.cc.o" "gcc" "src/CMakeFiles/alcop.dir/tuner/strategy.cc.o.d"
  "/root/repo/src/workloads/conv_ref.cc" "src/CMakeFiles/alcop.dir/workloads/conv_ref.cc.o" "gcc" "src/CMakeFiles/alcop.dir/workloads/conv_ref.cc.o.d"
  "/root/repo/src/workloads/library.cc" "src/CMakeFiles/alcop.dir/workloads/library.cc.o" "gcc" "src/CMakeFiles/alcop.dir/workloads/library.cc.o.d"
  "/root/repo/src/workloads/models.cc" "src/CMakeFiles/alcop.dir/workloads/models.cc.o" "gcc" "src/CMakeFiles/alcop.dir/workloads/models.cc.o.d"
  "/root/repo/src/workloads/ops.cc" "src/CMakeFiles/alcop.dir/workloads/ops.cc.o" "gcc" "src/CMakeFiles/alcop.dir/workloads/ops.cc.o.d"
  "/root/repo/src/workloads/xla.cc" "src/CMakeFiles/alcop.dir/workloads/xla.cc.o" "gcc" "src/CMakeFiles/alcop.dir/workloads/xla.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
