// Experiment E5 — Fig. 12: best-in-top-k accuracy of the pipeline-aware
// analytical performance model versus bottleneck-based analysis.
//
// Both models rank the entire schedule space by predicted cycles; the
// best *measured* performance among the model's top-k picks is reported,
// normalized to the exhaustive-search optimum. "compile fail" marks an
// operator whose first k model picks all fail to compile/fit — the
// bottleneck model, blind to occupancy, is prone to this.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "target/gpu_spec.h"
#include "workloads/ops.h"

using namespace alcop;  // NOLINT(build/namespaces) - bench driver

namespace {

// Best measured cycles among the first k entries of a ranking; infinity if
// none compiled.
double BestInTopK(const tuner::TuningResult& ranked, size_t k) {
  return ranked.BestInFirstK(k);
}

void PrintCell(double best, double exhaustive_best) {
  if (!std::isfinite(best)) {
    std::printf(" %9s", "fail");
  } else {
    std::printf(" %8.0f%%", 100.0 * exhaustive_best / best);
  }
}

}  // namespace

int main() {
  target::GpuSpec spec = target::AmpereSpec();

  std::printf("Fig. 12: best-in-top-k of the ALCOP analytical model vs "
              "bottleneck analysis\n(normalized to exhaustive search, %s)\n\n",
              spec.name.c_str());
  std::printf("%-16s | %9s %9s | %9s %9s\n", "operator", "anal k=10",
              "botl k=10", "anal k=50", "botl k=50");
  bench::PrintRule(64);

  double sums[4] = {0, 0, 0, 0};
  int counts[4] = {0, 0, 0, 0};
  for (const schedule::GemmOp& op : workloads::BenchmarkOps()) {
    tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
    tuner::TuningResult exhaustive = tuner::ExhaustiveSearch(task);
    double best = exhaustive.BestInFirstK(exhaustive.trials.size());

    tuner::TuningResult analytical =
        tuner::AnalyticalRanking(task, task.space.size());
    tuner::TuningResult bottleneck =
        tuner::BottleneckRanking(task, task.space.size());

    double cells[4] = {BestInTopK(analytical, 10), BestInTopK(bottleneck, 10),
                       BestInTopK(analytical, 50), BestInTopK(bottleneck, 50)};
    std::printf("%-16s |", op.name.c_str());
    for (int c = 0; c < 4; ++c) {
      PrintCell(cells[c], best);
      if (c == 1) std::printf(" |");
      if (std::isfinite(cells[c])) {
        sums[c] += best / cells[c];
        ++counts[c];
      }
    }
    std::printf("\n");
  }

  bench::PrintRule(64);
  std::printf("%-16s |", "average");
  for (int c = 0; c < 4; ++c) {
    std::printf(" %8.0f%%", 100.0 * sums[c] / counts[c]);
    if (c == 1) std::printf(" |");
  }
  std::printf("\n\npaper reference: top-10 analytical 79%% vs bottleneck "
              "75%%; top-50 analytical 92%% vs bottleneck 88%%; >95%% on all "
              "MatMuls\n");
  return 0;
}
