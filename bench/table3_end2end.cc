// Experiment E3 — Table III: end-to-end model inference speedup from
// pipelining, versus TVM and XLA.
//
// For every distinct GEMM-family operator in a model, each compiler tunes
// within its own capability:
//   ALCOP : full pipelining space, model-assisted search (top-12 of the
//           analytical ranking, measured)
//   TVM   : same search without pipelining
//   XLA   : fixed kernel menu (double buffering at most) + conservative
//           fusion (more elementwise traffic, more launches)
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "target/gpu_spec.h"
#include "tuner/strategy.h"
#include "workloads/models.h"
#include "workloads/xla.h"

using namespace alcop;  // NOLINT(build/namespaces) - bench driver

namespace {

constexpr size_t kTrials = 12;

double TunedCycles(const schedule::GemmOp& op, const target::GpuSpec& spec,
                   const tuner::SpaceOptions& options) {
  tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec, options);
  if (task.space.empty()) return 0.0;
  tuner::TuningResult result = tuner::AnalyticalRanking(task, kTrials);
  double best = result.BestInFirstK(kTrials);
  return std::isfinite(best) ? best : 0.0;
}

}  // namespace

int main() {
  target::GpuSpec spec = target::AmpereSpec();

  std::printf("Table III: end-to-end model speedup from pipelining (%s)\n\n",
              spec.name.c_str());
  std::printf("%-12s %10s %10s %10s | %12s %12s\n", "model", "ALCOP(us)",
              "TVM(us)", "XLA(us)", "vs TVM", "vs XLA");
  bench::PrintRule(74);

  for (const workloads::ModelGraph& model : workloads::Models()) {
    // ALCOP's space is a superset of TVM's (stage counts of 1 are valid
    // schedules), so its tuned kernel never loses to the non-pipelined
    // pick at equal budget.
    double alcop = workloads::EndToEndCycles(
        model,
        [&](const schedule::GemmOp& op) {
          double pipelined = TunedCycles(op, spec, tuner::SpaceOptions());
          double plain =
              TunedCycles(op, spec, tuner::SpaceOptions::NoPipelining());
          return std::min(pipelined, plain);
        },
        /*fused=*/true, spec);
    double tvm = workloads::EndToEndCycles(
        model,
        [&](const schedule::GemmOp& op) {
          return TunedCycles(op, spec, tuner::SpaceOptions::NoPipelining());
        },
        /*fused=*/true, spec);
    double xla = workloads::EndToEndCycles(
        model,
        [&](const schedule::GemmOp& op) {
          double cycles = workloads::XlaKernelCycles(op, spec);
          return std::isfinite(cycles) ? cycles : 0.0;
        },
        /*fused=*/false, spec);

    std::printf("%-12s %10.0f %10.0f %10.0f | %11.2fx %11.2fx\n",
                model.name.c_str(), spec.CyclesToUs(alcop),
                spec.CyclesToUs(tvm), spec.CyclesToUs(xla), tvm / alcop,
                xla / alcop);
  }

  bench::PrintRule(74);
  std::printf("\npaper reference: 1.02-1.18x over TVM, 1.01-1.64x over XLA\n");
  return 0;
}
