// Model-calibration bench: the Fig. 12 experiment as a permanent,
// machine-readable harness. Over the Fig. 10 operator sweep it runs
// perfmodel::CalibrateConfig on every (strided) schedule and reports
//   - per-term relative error of the Table-I analytical model against
//     the PMU/stall measurements (mean, median, p90, max per term), and
//   - the bottleneck-verdict agreement rates: the analytical limiter
//     against the PMU-derived roofline regime and against the stall
//     profiler's measured verdict, per operator and overall.
// It also samples the PMU differential gate: every ~53rd feasible config
// the interpreter's counters are compared bit-for-bit (memcmp) against
// the replay core's.
//
// Emits one JSON object (consumed by scripts/bench_calibration.sh into
// BENCH_calibration.json; the script fills the "meta" block). Exit is
// nonzero when the roofline agreement rate drops below 0.90, any sampled
// PMU comparison mismatches, or nothing feasible ran — never because of
// wall time or error magnitudes.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "perfmodel/calibration.h"
#include "sim/desim.h"
#include "sim/launch.h"
#include "sim/pmu.h"
#include "tuner/strategy.h"
#include "workloads/ops.h"

using namespace alcop;  // NOLINT(build/namespaces) - bench driver

namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool SamePmu(const sim::KernelPmu& a, const sim::KernelPmu& b) {
  return a.collected == b.collected &&
         std::memcmp(&a.total, &b.total, sizeof(sim::PmuCounters)) == 0 &&
         std::memcmp(&a.batch, &b.batch, sizeof(sim::PmuCounters)) == 0 &&
         BitEqual(a.achieved_occupancy, b.achieved_occupancy);
}

struct TermStats {
  std::vector<double> errors;

  void Summarize(double* mean, double* median, double* p90,
                 double* max) const {
    *mean = *median = *p90 = *max = 0.0;
    if (errors.empty()) return;
    std::vector<double> sorted = errors;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (double e : sorted) sum += e;
    *mean = sum / static_cast<double>(sorted.size());
    *median = sorted[sorted.size() / 2];
    *p90 = sorted[(sorted.size() * 9) / 10];
    *max = sorted.back();
  }
};

struct AgreeCount {
  int agree = 0;
  int total = 0;
  double Rate() const {
    return total > 0 ? static_cast<double>(agree) / total : 0.0;
  }
};

// Rank quality of the analytical model over one operator's full space:
// how trustworthy the ranking is that the tuner's model-guided pruning
// cut (SpaceOptions::model_topk) relies on.
struct OpRankQuality {
  std::string op;
  perfmodel::RankQuality rank;
  perfmodel::CoverageRecall coverage;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  // Quick mode (the CI perf-smoke job) strides the schedule space; the
  // full sweep audits every 4th config of every Fig. 10 operator (the
  // calibration pass profiles a full batch timeline per config, ~4x the
  // work of a bare simulation).
  const int stride = quick ? 16 : 4;

  target::GpuSpec spec = target::AmpereSpec();
  sim::ReplayArena arena;

  int configs = 0, feasible = 0;
  int pmu_samples = 0, pmu_mismatches = 0;
  // Term order is fixed by CalibrateConfig; keep insertion order here.
  std::vector<std::string> term_order;
  std::map<std::string, TermStats> terms;
  AgreeCount roofline_total, profile_total;
  std::vector<std::pair<std::string, std::pair<AgreeCount, AgreeCount>>>
      per_op;  // op name -> (roofline, profile)
  obs::Stopwatch watch;

  for (const schedule::GemmOp& op : workloads::BenchmarkOps()) {
    tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
    AgreeCount op_roofline, op_profile;
    for (size_t c = 0; c < task.space.size(); c += stride) {
      const schedule::ScheduleConfig& config = task.space[c];
      ++configs;
      perfmodel::CalibrationResult result =
          perfmodel::CalibrateConfig(op, config, spec, &arena);
      if (!result.feasible) continue;
      ++feasible;

      for (const perfmodel::TermError& term : result.terms) {
        auto [it, inserted] = terms.emplace(term.name, TermStats());
        if (inserted) term_order.push_back(term.name);
        it->second.errors.push_back(term.rel_error);
      }
      ++roofline_total.total;
      ++op_roofline.total;
      if (result.roofline_agrees) {
        ++roofline_total.agree;
        ++op_roofline.agree;
      }
      ++profile_total.total;
      ++op_profile.total;
      if (result.profile_agrees) {
        ++profile_total.agree;
        ++op_profile.agree;
      }

      // Differential PMU gate: the interpreter must produce the replay
      // core's counters bit for bit.
      if (feasible % 53 == 1) {
        ++pmu_samples;
        sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);
        sim::KernelPmu interp_pmu;
        sim::InterpretKernel(compiled, spec, &interp_pmu);
        if (!SamePmu(interp_pmu, result.pmu)) {
          if (++pmu_mismatches <= 3) {
            std::fprintf(stderr, "PMU MISMATCH %s %s\n", op.name.c_str(),
                         config.ToString().c_str());
          }
        }
      }
    }
    per_op.emplace_back(op.name, std::make_pair(op_roofline, op_profile));
  }

  // Rank-quality audit over the *full* space of every operator (cheap:
  // measurements route through the sim cache and bytecode replay). This is
  // the number the model-guided pruning cut stands on: of the measured
  // top-32, the fraction effectively preserved when only the model's
  // top-128 survive (1% tolerance), plus Kendall tau-b as a diagnostic.
  std::vector<OpRankQuality> rank_per_op;
  double tau_sum = 0.0, coverage_min = 1.0;
  bool best_survives_all = true;
  for (const schedule::GemmOp& op : workloads::BenchmarkOps()) {
    tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
    const size_t n = task.space.size();
    std::vector<double> measured(n), predicted(n);
    for (size_t i = 0; i < n; ++i) {
      measured[i] = task.measure(task.space[i]);
      predicted[i] = perfmodel::PredictCycles(op, task.space[i], spec);
    }
    OpRankQuality rq;
    rq.op = op.name;
    rq.rank = perfmodel::ComputeRankQuality(predicted, measured, 32);
    rq.coverage = perfmodel::ComputeCoverageRecall(
        predicted, measured, /*top=*/32,
        /*cut=*/tuner::SpaceOptions::kDefaultModelTopK, /*tolerance=*/1.01);
    tau_sum += rq.rank.kendall_tau;
    coverage_min = std::min(coverage_min, rq.coverage.coverage);
    best_survives_all = best_survives_all && rq.coverage.best_survives;
    rank_per_op.push_back(std::move(rq));
  }
  double seconds = watch.Seconds();

  std::printf("{\n");
  std::printf("  \"bench\": \"calibration\",\n");
  std::printf("  \"quick\": %s,\n", quick ? "true" : "false");
  std::printf("  \"meta\": {},\n");
  std::printf("  \"operators\": %zu,\n", per_op.size());
  std::printf("  \"configs\": %d,\n", configs);
  std::printf("  \"feasible\": %d,\n", feasible);
  std::printf("  \"seconds\": %.4f,\n", seconds);
  std::printf("  \"pmu_samples\": %d,\n", pmu_samples);
  std::printf("  \"pmu_mismatches\": %d,\n", pmu_mismatches);
  std::printf("  \"terms\": {\n");
  for (size_t i = 0; i < term_order.size(); ++i) {
    double mean, median, p90, max;
    terms[term_order[i]].Summarize(&mean, &median, &p90, &max);
    std::printf("    \"%s\": {\"mean_rel_error\": %.6g, "
                "\"median_rel_error\": %.6g, \"p90_rel_error\": %.6g, "
                "\"max_rel_error\": %.6g}%s\n",
                term_order[i].c_str(), mean, median, p90, max,
                i + 1 < term_order.size() ? "," : "");
  }
  std::printf("  },\n");
  std::printf("  \"agreement\": {\n");
  std::printf("    \"roofline_vs_bottleneck\": {\"agree\": %d, \"total\": %d, "
              "\"rate\": %.4f},\n",
              roofline_total.agree, roofline_total.total,
              roofline_total.Rate());
  std::printf("    \"profile_vs_bottleneck\": {\"agree\": %d, \"total\": %d, "
              "\"rate\": %.4f},\n",
              profile_total.agree, profile_total.total, profile_total.Rate());
  std::printf("    \"per_op\": [\n");
  for (size_t i = 0; i < per_op.size(); ++i) {
    std::printf("      {\"op\": \"%s\", \"roofline_rate\": %.4f, "
                "\"profile_rate\": %.4f, \"configs\": %d}%s\n",
                per_op[i].first.c_str(), per_op[i].second.first.Rate(),
                per_op[i].second.second.Rate(),
                per_op[i].second.first.total,
                i + 1 < per_op.size() ? "," : "");
  }
  std::printf("    ]\n");
  std::printf("  },\n");
  std::printf("  \"rank_quality\": {\n");
  std::printf("    \"top\": 32,\n");
  std::printf("    \"cut\": %d,\n", tuner::SpaceOptions::kDefaultModelTopK);
  std::printf("    \"tolerance\": 1.01,\n");
  std::printf("    \"kendall_tau_mean\": %.4f,\n",
              rank_per_op.empty()
                  ? 0.0
                  : tau_sum / static_cast<double>(rank_per_op.size()));
  std::printf("    \"topk_recall\": %.4f,\n", coverage_min);
  std::printf("    \"best_survives_all\": %s,\n",
              best_survives_all ? "true" : "false");
  std::printf("    \"per_op\": [\n");
  for (size_t i = 0; i < rank_per_op.size(); ++i) {
    const OpRankQuality& rq = rank_per_op[i];
    std::printf(
        "      {\"op\": \"%s\", \"space\": %lld, \"kendall_tau\": %.4f, "
        "\"strict_top32_recall\": %.4f, \"coverage\": %.4f, "
        "\"best_survives\": %s}%s\n",
        rq.op.c_str(), static_cast<long long>(rq.rank.count),
        rq.rank.kendall_tau, rq.rank.topk_recall, rq.coverage.coverage,
        rq.coverage.best_survives ? "true" : "false",
        i + 1 < rank_per_op.size() ? "," : "");
  }
  std::printf("    ]\n");
  std::printf("  }\n");
  std::printf("}\n");

  // Gate only on correctness and the claims downstream code relies on:
  // the PMU differential must be bit-exact, the roofline regime must
  // agree with the analytical limiter on >= 90% of feasible schedules,
  // and the model ranking the pruning cut trusts must effectively
  // preserve the measured top-32 of every operator.
  bool ok = feasible > 0 && pmu_mismatches == 0 &&
            roofline_total.Rate() >= 0.90 && coverage_min >= 0.95 &&
            best_survives_all;
  return ok ? 0 : 1;
}
