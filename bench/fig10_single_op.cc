// Experiment E2 — Fig. 10: single-operator performance normalized to TVM,
// with the paper's ablation columns:
//   TVM        : exhaustive best without pipelining
//   TVM DB     : manual double buffering (no cp.async), exhaustive best
//   ALCOP -ML-MS : two-stage shared-memory pipelining only
//   ALCOP -ML  : multi-stage shared-memory pipelining only
//   ALCOP      : full multi-stage multi-level pipelining
// Every compiler variant gets the exhaustive best schedule of its own
// space, as in the paper's methodology.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "target/gpu_spec.h"
#include "workloads/ops.h"

using namespace alcop;  // NOLINT(build/namespaces) - bench driver

int main() {
  target::GpuSpec spec = target::AmpereSpec();

  std::printf("Fig. 10: single-operator speedup over TVM (exhaustive "
              "schedules, %s)\n\n",
              spec.name.c_str());
  std::printf("%-16s %9s | %7s %9s %9s %7s\n", "operator", "TVM(cyc)",
              "TVM-DB", "-ML-MS", "-ML", "ALCOP");
  bench::PrintRule(66);

  double log_sum[4] = {0, 0, 0, 0};
  int count = 0;
  for (const schedule::GemmOp& op : workloads::BenchmarkOps()) {
    tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
    tuner::TuningResult exhaustive = tuner::ExhaustiveSearch(task);

    double tvm = bench::BestWhere(task, exhaustive, [](const auto& c) {
      return c.smem_stages == 1 && c.reg_stages == 1;
    });
    double no_ml_ms = bench::BestWhere(task, exhaustive, [](const auto& c) {
      return c.smem_stages <= 2 && c.reg_stages == 1;
    });
    double no_ml = bench::BestWhere(task, exhaustive, [](const auto& c) {
      return c.reg_stages == 1;
    });
    double alcop = exhaustive.BestInFirstK(exhaustive.trials.size());

    // TVM DB: re-simulate the two-stage subset with blocking copies (TVM's
    // double_buffer primitive has no cp.async).
    double tvm_db = tvm;
    for (const schedule::ScheduleConfig& config : task.space) {
      if (config.smem_stages != 2 || config.reg_stages != 1) continue;
      schedule::ScheduleConfig blocking = config;
      blocking.async_copies = false;
      sim::KernelTiming timing = sim::CompileAndSimulate(op, blocking, spec);
      if (timing.feasible && timing.cycles < tvm_db) tvm_db = timing.cycles;
    }

    double speedup[4] = {tvm / tvm_db, tvm / no_ml_ms, tvm / no_ml,
                         tvm / alcop};
    std::printf("%-16s %9.0f | %7.2f %9.2f %9.2f %7.2f\n", op.name.c_str(),
                tvm, speedup[0], speedup[1], speedup[2], speedup[3]);
    for (int v = 0; v < 4; ++v) log_sum[v] += std::log(speedup[v]);
    ++count;
  }

  bench::PrintRule(66);
  std::printf("%-16s %9s | %7.2f %9.2f %9.2f %7.2f   (geomean)\n", "average",
              "", std::exp(log_sum[0] / count), std::exp(log_sum[1] / count),
              std::exp(log_sum[2] / count), std::exp(log_sum[3] / count));
  std::printf("\npaper reference: TVM DB ~1.0x; ALCOP w/o ML&MS 1.01x; "
              "ALCOP w/o ML 1.13x; ALCOP avg 1.23x (max 1.73x)\n");
  return 0;
}
