// Serving load bench: what the observability layer costs and how alcopd
// holds up under an open-loop arrival process. Two sections, one JSON
// object (consumed by scripts/bench_serving_load.sh into
// BENCH_serving_load.json):
//
//   1. observability overhead — the same closed-loop hot-shape loop as
//      bench/serving.cc section 4, run twice: once against a daemon with
//      the full observability stack enabled (HTTP front end, JSONL
//      access log, per-request spans + histograms) and once against a
//      plain daemon. Gate: obs-enabled hot p99 <= 1.1x the larger of
//      the plain run and the committed BENCH_serving.json baseline
//      (passed in via --baseline-p99), i.e. turning on metrics and the
//      access log may not regress the hot path by more than 10%.
//
//   2. open-loop load — a deterministic-seeded arrival schedule (fixed
//      send times, NOT closed-loop: the sender never waits for a
//      response before sending the next request) drives a mixed
//      hot/cold shape distribution through one pipelined connection.
//      ~85% of requests are fast-lane probe hits on the hot 512^3
//      shape; the rest are fresh shapes that must compile on the slow
//      lane. Reported: offered vs achieved rate, client-side
//      p50/p99/p999, and the same quantiles recomputed from the
//      daemon's own scraped /metrics histograms. Gate: the access-log
//      line count equals the scraped latency-histogram _count summed
//      over both lanes (every request is logged exactly once, and
//      completion bookkeeping happens before the response is sent).
//
// The obs-enabled daemon runs (and is scraped) before the plain daemon
// starts, so the process-global registry holds only its requests when
// the access-log gate is checked.
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/client.h"
#include "serving/http.h"
#include "serving/server.h"
#include "target/gpu_spec.h"

using namespace alcop;  // NOLINT(build/namespaces) - bench driver

namespace {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size()));
  if (idx >= values.size()) idx = values.size() - 1;
  return values[idx];
}

std::string CompileRequest(uint64_t id, int64_t m, int64_t n, int64_t k,
                           const char* client = nullptr) {
  char client_field[80] = "";
  if (client != nullptr) {
    std::snprintf(client_field, sizeof(client_field), ",\"client\":\"%s\"",
                  client);
  }
  char buf[336];
  std::snprintf(buf, sizeof(buf),
                "{\"id\":%llu,\"method\":\"compile\",\"family\":\"matmul\","
                "\"batch\":1,\"m\":%lld,\"n\":%lld,\"k\":%lld%s,"
                "\"config\":{\"tb\":[128,128,32],\"warp\":[64,64,16],"
                "\"smem\":2}}",
                static_cast<unsigned long long>(id), static_cast<long long>(m),
                static_cast<long long>(n), static_cast<long long>(k),
                client_field);
  return buf;
}

// Closed-loop hot-shape latency against a running daemon: one warmup
// compile (may hit the slow lane), then `requests` fast-lane probe hits
// timed individually. Returns client-side milliseconds; empty on error.
std::vector<double> ClosedLoopHot(const std::string& socket_path,
                                  int requests) {
  serving::Client client;
  if (!client.Connect(socket_path)) return {};
  std::optional<serving::JsonValue> first =
      client.Call(CompileRequest(0, 512, 512, 512));
  const serving::JsonValue* ok = first ? first->Find("ok") : nullptr;
  if (ok == nullptr || !ok->BoolOr(false)) return {};
  std::vector<double> ms;
  ms.reserve(static_cast<size_t>(requests));
  for (int i = 1; i <= requests; ++i) {
    obs::Stopwatch watch;
    std::optional<serving::JsonValue> response =
        client.Call(CompileRequest(static_cast<uint64_t>(i), 512, 512, 512));
    double elapsed_ms = watch.Seconds() * 1e3;
    const serving::JsonValue* rok = response ? response->Find("ok") : nullptr;
    if (rok == nullptr || !rok->BoolOr(false)) return {};
    ms.push_back(elapsed_ms);
  }
  return ms;
}

// Splitmix-style step: deterministic across platforms, no libc rand.
uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr int kLoaders = 4;  // open-loop client identities (loader-0..3)

struct OpenLoopResult {
  bool ok = false;
  uint64_t requests = 0;
  uint64_t answered = 0;
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  uint64_t hot = 0;
  uint64_t cold = 0;
  uint64_t sent_by_loader[kLoaders] = {0};
};

// Open loop: send times are fixed by the seeded schedule before the
// first byte goes out; the sender thread sleeps until each deadline and
// writes the frame whether or not earlier responses have arrived. A
// receiver thread matches responses to requests by id.
OpenLoopResult OpenLoop(const std::string& socket_path, uint64_t requests,
                        double rate_rps, double hot_fraction, uint64_t seed) {
  OpenLoopResult result;
  result.requests = requests;

  struct Slot {
    int64_t send_ns = 0;
    std::atomic<int64_t> done_ns{-1};
  };
  std::vector<Slot> slots(requests);
  std::vector<std::string> payloads(requests);
  uint64_t state = seed;
  const double interval_ns = 1e9 / rate_rps;
  double when = 0.0;
  for (uint64_t i = 0; i < requests; ++i) {
    // Uniform jitter in [0.5, 1.5) of the mean interval: deterministic,
    // mean rate exactly `rate_rps`, but not metronome-regular.
    double jitter =
        0.5 + static_cast<double>(NextRand(&state) >> 11) * 0x1.0p-53;
    when += interval_ns * jitter;
    slots[i].send_ns = static_cast<int64_t>(when);
    bool hot = (static_cast<double>(NextRand(&state) >> 11) * 0x1.0p-53) <
               hot_fraction;
    // Round-robin self-declared identities: the per-client scraped
    // counters must match these send counts exactly.
    char loader[16];
    int loader_index = static_cast<int>(i % kLoaders);
    std::snprintf(loader, sizeof(loader), "loader-%d", loader_index);
    ++result.sent_by_loader[loader_index];
    if (hot) {
      ++result.hot;
      payloads[i] = CompileRequest(i + 1, 512, 512, 512, loader);
    } else {
      ++result.cold;
      // A shape the daemon has never seen: forces a slow-lane compile.
      payloads[i] =
          CompileRequest(i + 1, 512, 512,
                         4096 + 128 * static_cast<int64_t>(result.cold),
                         loader);
    }
  }

  serving::Client client;
  if (!client.Connect(socket_path)) return result;
  // Warm the hot shape so the schedule starts against a warm cache.
  std::optional<serving::JsonValue> warm =
      client.Call(CompileRequest(0, 512, 512, 512));
  const serving::JsonValue* warm_ok = warm ? warm->Find("ok") : nullptr;
  if (warm_ok == nullptr || !warm_ok->BoolOr(false)) return result;

  std::atomic<uint64_t> answered{0};
  std::atomic<bool> receive_failed{false};
  int64_t t0 = obs::NowNanos();
  std::thread receiver([&] {
    for (uint64_t i = 0; i < requests; ++i) {
      std::optional<std::string> raw = client.RecvRaw();
      if (!raw) {
        receive_failed.store(true);
        return;
      }
      const char* id_pos = std::strstr(raw->c_str(), "\"id\":");
      uint64_t id = id_pos != nullptr
                        ? static_cast<uint64_t>(std::atoll(id_pos + 5))
                        : 0;
      if (id >= 1 && id <= requests &&
          raw->find("\"ok\":true") != std::string::npos) {
        slots[id - 1].done_ns.store(obs::NowNanos() - t0);
        answered.fetch_add(1);
      }
    }
  });

  for (uint64_t i = 0; i < requests; ++i) {
    int64_t now = obs::NowNanos() - t0;
    int64_t wait = slots[i].send_ns - now;
    if (wait > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(wait));
    }
    // Restamp with the actual send time so latency excludes scheduler
    // overshoot; the offered rate is still computed off the plan.
    int64_t sent = obs::NowNanos() - t0;
    if (!client.Send(payloads[i])) break;
    slots[i].send_ns = sent;
  }
  receiver.join();

  result.answered = answered.load();
  result.ok = !receive_failed.load() && result.answered == requests;

  int64_t last_done = 0;
  std::vector<double> latency_ms;
  latency_ms.reserve(requests);
  for (Slot& slot : slots) {
    int64_t done = slot.done_ns.load();
    if (done < 0) continue;
    last_done = std::max(last_done, done);
    latency_ms.push_back(static_cast<double>(done - slot.send_ns) / 1e6);
  }
  double planned_seconds = static_cast<double>(slots.back().send_ns) / 1e9;
  result.offered_rps = planned_seconds > 0.0
                           ? static_cast<double>(requests) / planned_seconds
                           : 0.0;
  double run_seconds = static_cast<double>(last_done) / 1e9;
  result.achieved_rps =
      run_seconds > 0.0 ? static_cast<double>(result.answered) / run_seconds
                        : 0.0;
  result.p50_ms = Percentile(latency_ms, 0.50);
  result.p99_ms = Percentile(latency_ms, 0.99);
  result.p999_ms = Percentile(latency_ms, 0.999);
  return result;
}

// Rebuilds obs::HistogramData from the Prometheus exposition text for
// one lane of alcop_serving_request_latency_us. Buckets are cumulative
// in the exposition and per-bucket in HistogramData; the power-of-two
// `le` values map back to bucket indices via log2.
bool ParseScrapedHistogram(const std::string& body, const std::string& lane,
                           obs::HistogramData* data) {
  *data = obs::HistogramData{};
  const std::string bucket_prefix =
      "alcop_serving_request_latency_us_bucket{lane=\"" + lane + "\",le=\"";
  const std::string sum_prefix =
      "alcop_serving_request_latency_us_sum{lane=\"" + lane + "\"} ";
  const std::string count_prefix =
      "alcop_serving_request_latency_us_count{lane=\"" + lane + "\"} ";
  bool saw_count = false;
  uint64_t cumulative[64] = {0};
  int top = -1;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind(bucket_prefix, 0) == 0) {
      size_t quote = line.find('"', bucket_prefix.size());
      if (quote == std::string::npos) return false;
      std::string le = line.substr(bucket_prefix.size(),
                                   quote - bucket_prefix.size());
      uint64_t value = std::strtoull(line.c_str() + quote + 3, nullptr, 10);
      if (le == "+Inf") continue;  // equals _count, checked elsewhere
      double upper = std::strtod(le.c_str(), nullptr);
      int index = upper >= 1.0 ? static_cast<int>(std::lround(std::log2(upper)))
                               : 0;
      if (index < 0 || index >= 64) return false;
      cumulative[index] = value;
      top = std::max(top, index);
    } else if (line.rfind(sum_prefix, 0) == 0) {
      data->sum = std::strtod(line.c_str() + sum_prefix.size(), nullptr);
    } else if (line.rfind(count_prefix, 0) == 0) {
      data->count = std::strtoull(line.c_str() + count_prefix.size(),
                                  nullptr, 10);
      saw_count = true;
    }
  }
  uint64_t previous = 0;
  for (int i = 0; i <= top; ++i) {
    data->buckets[i] = cumulative[i] - previous;
    previous = cumulative[i];
    if (data->buckets[i] > 0) data->max = std::ldexp(1.0, i);
  }
  return saw_count;
}

// Collects every alcop_serving_client_requests{client="..."} sample from
// the exposition: one (identity, count) pair per labeled series.
std::vector<std::pair<std::string, uint64_t>> ParseClientRequestCounts(
    const std::string& body) {
  std::vector<std::pair<std::string, uint64_t>> out;
  const std::string prefix = "alcop_serving_client_requests{client=\"";
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    std::string line = body.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind(prefix, 0) != 0) continue;
    size_t quote = line.find('"', prefix.size());
    if (quote == std::string::npos) continue;
    out.emplace_back(
        line.substr(prefix.size(), quote - prefix.size()),
        std::strtoull(line.c_str() + quote + 3, nullptr, 10));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  double baseline_p99_ms = 0.0;  // 0 = no committed baseline available
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else if (std::string(argv[i]) == "--baseline-p99" && i + 1 < argc) {
      baseline_p99_ms = std::atof(argv[++i]);
    } else if (std::string(argv[i]) == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    }
  }

  const int hot_requests = quick ? 200 : 2000;
  const uint64_t open_requests = quick ? 300 : 3000;
  const double open_rate_rps = quick ? 500.0 : 1500.0;
  const double hot_fraction = 0.85;
  const uint64_t seed = 42;
  const std::string base =
      "/tmp/alcop_bench_serving_load_" + std::to_string(getpid());
  const std::string access_log_path = base + ".access.jsonl";

  // ---- Obs-enabled daemon: HTTP + access log + per-request metrics.
  // Runs first so the global registry holds only its requests when the
  // access-log/_count gate is checked.
  serving::ServerOptions obs_options;
  obs_options.socket_path = base + "_obs.sock";
  obs_options.spec = target::AmpereSpec();
  obs_options.default_trials = 4;
  obs_options.persist_on_shutdown = false;
  obs_options.http_port = 0;
  obs_options.access_log_path = access_log_path;
  // The full flight-recorder stack, deliberately hotter than the
  // defaults: the overhead gate below prices retention + per-client
  // labels + the watchdog together.
  obs_options.flight_depth = 4096;
  obs_options.snapshot_interval_ms = 200;
  obs_options.snapshot_depth = 300;
  obs_options.watchdog_stall_ms = 1000;
  obs_options.client_metrics = true;
  serving::Server obs_server(obs_options);
  std::string error;
  if (!obs_server.Start(&error)) {
    std::fprintf(stderr, "obs server start failed: %s\n", error.c_str());
    return 1;
  }
  int http_port = obs_server.http_port();

  std::vector<double> obs_hot_ms =
      ClosedLoopHot(obs_options.socket_path, hot_requests);
  bool obs_hot_ok = !obs_hot_ms.empty();
  double obs_hot_p50 = Percentile(obs_hot_ms, 0.50);
  double obs_hot_p99 = Percentile(obs_hot_ms, 0.99);

  OpenLoopResult open = OpenLoop(obs_options.socket_path, open_requests,
                                 open_rate_rps, hot_fraction, seed);

  // Scrape while the daemon is live, after every response has been
  // received — nothing is in flight, so the histograms and the access
  // log both cover exactly the completed requests.
  std::optional<serving::HttpResponse> scrape =
      serving::HttpCall(http_port, "GET", "/metrics");
  bool scrape_ok = scrape && scrape->status == 200;
  obs::HistogramData scraped_fast, scraped_slow;
  bool parse_ok =
      scrape_ok &&
      ParseScrapedHistogram(scrape->body, "fast", &scraped_fast) &&
      ParseScrapedHistogram(scrape->body, "slow", &scraped_slow);
  if (scrape_ok && !metrics_out.empty()) {
    std::ofstream out(metrics_out);
    out << scrape->body;
  }

  uint64_t access_lines = 0;
  {
    std::ifstream log(access_log_path);
    std::string line;
    while (std::getline(log, line)) {
      if (!line.empty()) ++access_lines;
    }
  }
  uint64_t scraped_total = scraped_fast.count + scraped_slow.count;
  bool access_matches = parse_ok && access_lines == scraped_total;

  // Per-client attribution gates: every completed request was counted
  // against exactly one client series, so the series sum equals the
  // access-log line count; and each open-loop loader identity's scraped
  // count equals what that loader actually sent.
  std::vector<std::pair<std::string, uint64_t>> client_counts =
      scrape_ok ? ParseClientRequestCounts(scrape->body)
                : std::vector<std::pair<std::string, uint64_t>>{};
  uint64_t scraped_client_sum = 0;
  for (const auto& [name, count] : client_counts) {
    scraped_client_sum += count;
  }
  bool client_sum_matches = scrape_ok && scraped_client_sum == access_lines;
  bool loaders_match = scrape_ok;
  uint64_t scraped_by_loader[kLoaders] = {0};
  for (int i = 0; i < kLoaders; ++i) {
    char loader[16];
    std::snprintf(loader, sizeof(loader), "loader-%d", i);
    for (const auto& [name, count] : client_counts) {
      if (name == loader) scraped_by_loader[i] = count;
    }
    if (scraped_by_loader[i] != open.sent_by_loader[i]) loaders_match = false;
  }

  obs_server.Stop();
  std::remove(access_log_path.c_str());

  // ---- Plain daemon: no HTTP, no access log. Its requests do land in
  // the same global histograms, but the scrape above already happened.
  serving::ServerOptions plain_options;
  plain_options.socket_path = base + "_plain.sock";
  plain_options.spec = target::AmpereSpec();
  plain_options.default_trials = 4;
  plain_options.persist_on_shutdown = false;
  plain_options.flight_depth = 0;
  plain_options.snapshot_interval_ms = 0;
  plain_options.watchdog_stall_ms = 0;
  plain_options.client_metrics = false;
  serving::Server plain_server(plain_options);
  if (!plain_server.Start(&error)) {
    std::fprintf(stderr, "plain server start failed: %s\n", error.c_str());
    return 1;
  }
  std::vector<double> plain_hot_ms =
      ClosedLoopHot(plain_options.socket_path, hot_requests);
  bool plain_hot_ok = !plain_hot_ms.empty();
  double plain_hot_p50 = Percentile(plain_hot_ms, 0.50);
  double plain_hot_p99 = Percentile(plain_hot_ms, 0.99);
  plain_server.Stop();

  // The overhead gate compares against the larger of the plain run and
  // the committed baseline: a noisy fast plain run cannot fail a build
  // on its own, but a real regression against the checked-in number
  // still does.
  double reference_p99 = std::max(plain_hot_p99, baseline_p99_ms);
  bool overhead_ok =
      obs_hot_ok && plain_hot_ok && obs_hot_p99 <= 1.10 * reference_p99;

  bool gates_ok = overhead_ok && open.ok && scrape_ok && parse_ok &&
                  access_matches && client_sum_matches && loaders_match;

  std::printf(
      "{\n"
      "  \"bench\": \"serving_load\",\n"
      "  \"quick\": %s,\n"
      "  \"seed\": %llu,\n"
      "  \"overhead\": {\n"
      "    \"hot_requests\": %d,\n"
      "    \"plain_p50_ms\": %.3f,\n"
      "    \"plain_p99_ms\": %.3f,\n"
      "    \"obs_p50_ms\": %.3f,\n"
      "    \"obs_p99_ms\": %.3f,\n"
      "    \"baseline_p99_ms\": %.3f,\n"
      "    \"reference_p99_ms\": %.3f,\n"
      "    \"overhead_ok\": %s\n"
      "  },\n"
      "  \"open_loop\": {\n"
      "    \"requests\": %llu,\n"
      "    \"answered\": %llu,\n"
      "    \"hot\": %llu,\n"
      "    \"cold\": %llu,\n"
      "    \"offered_rps\": %.1f,\n"
      "    \"achieved_rps\": %.1f,\n"
      "    \"client_p50_ms\": %.3f,\n"
      "    \"client_p99_ms\": %.3f,\n"
      "    \"client_p999_ms\": %.3f\n"
      "  },\n"
      "  \"scraped\": {\n"
      "    \"fast_count\": %llu,\n"
      "    \"fast_p50_us\": %.1f,\n"
      "    \"fast_p99_us\": %.1f,\n"
      "    \"fast_p999_us\": %.1f,\n"
      "    \"slow_count\": %llu,\n"
      "    \"slow_p50_us\": %.1f,\n"
      "    \"slow_p99_us\": %.1f,\n"
      "    \"slow_p999_us\": %.1f,\n"
      "    \"access_log_lines\": %llu,\n"
      "    \"access_log_matches_count\": %s\n"
      "  },\n"
      "  \"client_attribution\": {\n"
      "    \"client_series\": %zu,\n"
      "    \"scraped_client_sum\": %llu,\n"
      "    \"sum_matches_access_log\": %s,\n"
      "    \"loader_sent\": [%llu, %llu, %llu, %llu],\n"
      "    \"loader_scraped\": [%llu, %llu, %llu, %llu],\n"
      "    \"loaders_match\": %s\n"
      "  },\n"
      "  \"gates_ok\": %s\n"
      "}\n",
      quick ? "true" : "false", static_cast<unsigned long long>(seed),
      hot_requests, plain_hot_p50, plain_hot_p99, obs_hot_p50, obs_hot_p99,
      baseline_p99_ms, reference_p99, overhead_ok ? "true" : "false",
      static_cast<unsigned long long>(open.requests),
      static_cast<unsigned long long>(open.answered),
      static_cast<unsigned long long>(open.hot),
      static_cast<unsigned long long>(open.cold), open.offered_rps,
      open.achieved_rps, open.p50_ms, open.p99_ms, open.p999_ms,
      static_cast<unsigned long long>(scraped_fast.count),
      obs::HistogramQuantile(scraped_fast, 0.50),
      obs::HistogramQuantile(scraped_fast, 0.99),
      obs::HistogramQuantile(scraped_fast, 0.999),
      static_cast<unsigned long long>(scraped_slow.count),
      obs::HistogramQuantile(scraped_slow, 0.50),
      obs::HistogramQuantile(scraped_slow, 0.99),
      obs::HistogramQuantile(scraped_slow, 0.999),
      static_cast<unsigned long long>(access_lines),
      access_matches ? "true" : "false", client_counts.size(),
      static_cast<unsigned long long>(scraped_client_sum),
      client_sum_matches ? "true" : "false",
      static_cast<unsigned long long>(open.sent_by_loader[0]),
      static_cast<unsigned long long>(open.sent_by_loader[1]),
      static_cast<unsigned long long>(open.sent_by_loader[2]),
      static_cast<unsigned long long>(open.sent_by_loader[3]),
      static_cast<unsigned long long>(scraped_by_loader[0]),
      static_cast<unsigned long long>(scraped_by_loader[1]),
      static_cast<unsigned long long>(scraped_by_loader[2]),
      static_cast<unsigned long long>(scraped_by_loader[3]),
      loaders_match ? "true" : "false", gates_ok ? "true" : "false");

  return gates_ok ? 0 : 1;
}
