// Serving bench: tuning-as-a-service end to end in numbers. Four
// sections, one JSON object (consumed by scripts/bench_serving.sh into
// BENCH_serving.json):
//
//   1. cold search vs warm restart — every Fig. 10 operator is tuned
//      cold, stored, persisted to disk; then the process state is wiped,
//      the cache reloaded, and each operator answered the way alcopd's
//      fast lane does (stored best replayed through the sim cache). The
//      restart must be >= 5x faster than the cold search and return
//      bit-identical best cycles.
//   2. warm-start transfer — with the store reloaded, a fresh search per
//      operator is seeded via FindWarmStart; seeds are measured first and
//      folded into the result, so the warm search must reach the cold
//      search's best-found on every operator.
//   3. LRU residency — a re-sweep under half the unbounded footprint must
//      stay within budget and actually evict.
//   4. daemon latency — an in-process alcopd on a unix socket answers a
//      hot shape repeatedly (fast-lane p99 gated at 10 ms) and a burst of
//      distinct shapes from concurrent clients (slow-lane batching).
//
// Wall-clock throughput is reported but only the gates above (plus
// round-trip integrity) decide the exit status.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "obs/trace.h"
#include "schedule/schedule.h"
#include "serving/client.h"
#include "serving/persist.h"
#include "serving/server.h"
#include "sim/compile.h"
#include "sim/sim_cache.h"
#include "target/gpu_spec.h"
#include "tuner/records.h"
#include "tuner/strategy.h"
#include "tuner/transfer.h"
#include "workloads/ops.h"

using namespace alcop;  // NOLINT(build/namespaces) - bench driver

namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void WipeProcessState() {
  sim::ResetSimCache();
  sim::ResetSkeletonPool();
  tuner::TuningStore::Global().Clear();
}

double Percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted_ms.size()));
  if (idx >= sorted_ms.size()) idx = sorted_ms.size() - 1;
  return sorted_ms[idx];
}

std::string CompileRequest(int id, int64_t m, int64_t n, int64_t k) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"id\":%d,\"method\":\"compile\",\"family\":\"matmul\","
                "\"batch\":1,\"m\":%lld,\"n\":%lld,\"k\":%lld,"
                "\"config\":{\"tb\":[128,128,32],\"warp\":[64,64,16],"
                "\"smem\":2}}",
                id, static_cast<long long>(m), static_cast<long long>(n),
                static_cast<long long>(k));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  target::GpuSpec spec = target::AmpereSpec();
  const std::vector<schedule::GemmOp>& all_ops = workloads::BenchmarkOps();
  const size_t num_ops = quick ? std::min<size_t>(4, all_ops.size())
                               : all_ops.size();
  const size_t trials = quick ? 10 : 24;
  const std::string cache_path =
      "/tmp/alcop_bench_serving_" + std::to_string(getpid()) + ".alcp";

  // ---- 1a. Cold search per operator, results stored + persisted. ----
  WipeProcessState();
  std::vector<tuner::TuningTask> tasks;
  for (size_t i = 0; i < num_ops; ++i) {
    tasks.push_back(tuner::MakeSimulatorTask(all_ops[i], spec));
  }
  std::vector<double> cold_best(num_ops);
  obs::Stopwatch watch;
  for (size_t i = 0; i < num_ops; ++i) {
    tuner::XgbOptions xgb;
    xgb.pretrain_with_analytical = true;  // the serving default
    tuner::TuningResult result = tuner::XgbTuner(tasks[i], trials, xgb);
    cold_best[i] = result.BestInFirstK(result.trials.size());
    tuner::StoreTuning(tasks[i], result, tuner::TuningStore::Global());
  }
  double cold_seconds = watch.Seconds();

  serving::PersistStats saved = serving::SaveCache(cache_path, spec);

  // ---- 1b. Warm restart: wipe, reload, answer from the store. ----
  WipeProcessState();
  serving::PersistStats loaded = serving::LoadCache(cache_path, spec);
  bool round_trip_ok = saved.ok && loaded.ok &&
                       loaded.timings == saved.timings &&
                       loaded.programs == saved.programs &&
                       loaded.tunings == saved.tunings && loaded.skipped == 0;

  int restart_mismatches = 0;
  watch.Restart();
  for (size_t i = 0; i < num_ops; ++i) {
    std::optional<tuner::StoredTuning> stored =
        tuner::TuningStore::Global().Get(tuner::OpKey(tasks[i].op));
    std::optional<tuner::StoredTrial> best =
        stored ? stored->Best() : std::nullopt;
    if (!best) {
      ++restart_mismatches;
      continue;
    }
    // Exactly alcopd's warm-restart path: the stored best config
    // re-measured through the (just loaded) sim cache — a timing-layer
    // hit, never a compile.
    sim::KernelTiming timing =
        sim::CachedCompileAndSimulate(tasks[i].op, best->config, spec);
    if (!BitEqual(timing.cycles, best->cycles) ||
        !BitEqual(best->cycles, cold_best[i])) {
      ++restart_mismatches;
    }
  }
  double warm_restart_seconds = watch.Seconds();
  double warm_restart_speedup =
      warm_restart_seconds > 0.0 ? cold_seconds / warm_restart_seconds : 0.0;
  sim::SimCacheStats restart_stats = sim::GetSimCacheStats();

  // ---- 2. Warm-start transfer reaches the cold best everywhere. ----
  size_t ops_reached = 0;
  size_t warm_seeds_total = 0;
  watch.Restart();
  for (size_t i = 0; i < num_ops; ++i) {
    tuner::WarmStart warm =
        tuner::FindWarmStart(tasks[i], tuner::TuningStore::Global());
    tuner::XgbOptions xgb;
    xgb.pretrain_with_analytical = true;
    xgb.warm_seeds = warm.seeds;
    warm_seeds_total += warm.seeds.size();
    tuner::TuningResult result = tuner::XgbTuner(tasks[i], trials, xgb);
    double warm_best = result.BestInFirstK(result.trials.size());
    if (warm_best <= cold_best[i]) ++ops_reached;
  }
  double warm_transfer_seconds = watch.Seconds();

  // ---- 3. LRU residency under half the unbounded footprint. ----
  uint64_t unbounded = sim::GetSimCacheStats().resident_bytes;
  uint64_t budget = unbounded / 2;
  sim::SetSimCacheBudgetBytes(budget);
  // Keep sweeping fresh shape variants through the cache: every insert
  // now lands under the budget, and the LRU must hold residency there
  // while the sweep keeps making progress (re-measures stay hits).
  for (size_t i = 0; i < num_ops; ++i) {
    std::optional<tuner::StoredTuning> stored =
        tuner::TuningStore::Global().Get(tuner::OpKey(tasks[i].op));
    if (!stored) continue;
    schedule::GemmOp variant = tasks[i].op;
    variant.k += 64;  // a shape the cold sweep never compiled
    for (const tuner::StoredTrial& trial : stored->trials) {
      sim::CachedCompileAndSimulate(tasks[i].op, trial.config, spec);
      sim::CachedCompileAndSimulate(variant, trial.config, spec);
    }
  }
  sim::SimCacheStats lru_stats = sim::GetSimCacheStats();
  bool lru_within_budget = lru_stats.resident_bytes <= budget;
  sim::SetSimCacheBudgetBytes(0);

  // ---- 4. In-process daemon: hot-shape p99 and a concurrent burst. ----
  WipeProcessState();
  serving::ServerOptions server_options;
  server_options.socket_path =
      "/tmp/alcop_bench_serving_" + std::to_string(getpid()) + ".sock";
  server_options.spec = spec;
  server_options.default_trials = 4;
  server_options.cache_path = cache_path;  // reload the persisted state
  server_options.persist_on_shutdown = false;
  serving::Server server(server_options);
  std::string server_error;
  if (!server.Start(&server_error)) {
    std::fprintf(stderr, "server start failed: %s\n", server_error.c_str());
    std::remove(cache_path.c_str());
    return 1;
  }

  const int hot_requests = quick ? 200 : 2000;
  std::vector<double> hot_ms;
  bool daemon_ok = true;
  {
    serving::Client client;
    std::string error;
    if (!client.Connect(server_options.socket_path, &error)) {
      std::fprintf(stderr, "client connect failed: %s\n", error.c_str());
      daemon_ok = false;
    } else {
      // First request may compile (slow lane); every one after is a
      // fast-lane probe hit on the same timing entry.
      std::optional<serving::JsonValue> first =
          client.Call(CompileRequest(0, 512, 512, 512));
      if (!first || !first->BoolOr(false)) {
        const serving::JsonValue* ok = first ? first->Find("ok") : nullptr;
        if (ok == nullptr || !ok->BoolOr(false)) daemon_ok = false;
      }
      hot_ms.reserve(static_cast<size_t>(hot_requests));
      for (int i = 1; i <= hot_requests && daemon_ok; ++i) {
        obs::Stopwatch request_watch;
        std::optional<serving::JsonValue> response =
            client.Call(CompileRequest(i, 512, 512, 512));
        double ms = request_watch.Seconds() * 1e3;
        const serving::JsonValue* ok =
            response ? response->Find("ok") : nullptr;
        if (ok == nullptr || !ok->BoolOr(false)) daemon_ok = false;
        hot_ms.push_back(ms);
      }
    }
  }
  double hot_p50_ms = Percentile(hot_ms, 0.50);
  double hot_p99_ms = Percentile(hot_ms, 0.99);

  // Concurrent burst of distinct shapes: each client pipelines cold
  // compiles that all land in one slow-lane drain and replay batch.
  const int burst_clients = 4;
  const int burst_per_client = quick ? 4 : 12;
  std::atomic<int> burst_answered{0};
  watch.Restart();
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < burst_clients; ++t) {
      threads.emplace_back([&, t] {
        serving::Client client;
        if (!client.Connect(server_options.socket_path)) return;
        for (int i = 0; i < burst_per_client; ++i) {
          int64_t k = 768 + 128 * (t * burst_per_client + i);
          std::optional<serving::JsonValue> response =
              client.Call(CompileRequest(t * 1000 + i, 512, 512, k));
          const serving::JsonValue* ok =
              response ? response->Find("ok") : nullptr;
          if (ok != nullptr && ok->BoolOr(false)) {
            burst_answered.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  double burst_seconds = watch.Seconds();
  int burst_requests = burst_clients * burst_per_client;
  if (burst_answered.load() != burst_requests) daemon_ok = false;

  uint64_t requests_served = server.requests_served();
  server.Stop();
  std::remove(cache_path.c_str());

  bool gates_ok = round_trip_ok && restart_mismatches == 0 &&
                  warm_restart_speedup >= 5.0 && ops_reached == num_ops &&
                  lru_within_budget && lru_stats.evictions > 0 && daemon_ok &&
                  hot_p99_ms <= 10.0;

  std::printf(
      "{\n"
      "  \"bench\": \"serving\",\n"
      "  \"quick\": %s,\n"
      "  \"operators\": %zu,\n"
      "  \"trials_per_op\": %zu,\n"
      "  \"tuning\": {\n"
      "    \"cold_seconds\": %.4f,\n"
      "    \"warm_restart_seconds\": %.6f,\n"
      "    \"warm_restart_speedup\": %.1f,\n"
      "    \"restart_mismatches\": %d,\n"
      "    \"restart_timing_hits\": %llu,\n"
      "    \"restart_timing_misses\": %llu,\n"
      "    \"warm_transfer_seconds\": %.4f,\n"
      "    \"warm_seeds_total\": %zu,\n"
      "    \"ops_reaching_cold_best\": %zu\n"
      "  },\n"
      "  \"persistence\": {\n"
      "    \"bytes\": %llu,\n"
      "    \"timings\": %llu,\n"
      "    \"programs\": %llu,\n"
      "    \"skeletons\": %llu,\n"
      "    \"tunings\": %llu,\n"
      "    \"round_trip_ok\": %s\n"
      "  },\n"
      "  \"lru\": {\n"
      "    \"unbounded_bytes\": %llu,\n"
      "    \"budget_bytes\": %llu,\n"
      "    \"resident_bytes\": %llu,\n"
      "    \"evictions\": %llu,\n"
      "    \"within_budget\": %s\n"
      "  },\n"
      "  \"daemon\": {\n"
      "    \"hot_requests\": %d,\n"
      "    \"hot_p50_ms\": %.3f,\n"
      "    \"hot_p99_ms\": %.3f,\n"
      "    \"burst_clients\": %d,\n"
      "    \"burst_requests\": %d,\n"
      "    \"burst_answered\": %d,\n"
      "    \"burst_seconds\": %.4f,\n"
      "    \"requests_served\": %llu\n"
      "  },\n"
      "  \"gates_ok\": %s\n"
      "}\n",
      quick ? "true" : "false", num_ops, trials, cold_seconds,
      warm_restart_seconds, warm_restart_speedup, restart_mismatches,
      static_cast<unsigned long long>(restart_stats.hits),
      static_cast<unsigned long long>(restart_stats.misses),
      warm_transfer_seconds, warm_seeds_total, ops_reached,
      static_cast<unsigned long long>(saved.bytes),
      static_cast<unsigned long long>(saved.timings),
      static_cast<unsigned long long>(saved.programs),
      static_cast<unsigned long long>(saved.skeletons),
      static_cast<unsigned long long>(saved.tunings),
      round_trip_ok ? "true" : "false",
      static_cast<unsigned long long>(unbounded),
      static_cast<unsigned long long>(budget),
      static_cast<unsigned long long>(lru_stats.resident_bytes),
      static_cast<unsigned long long>(lru_stats.evictions),
      lru_within_budget ? "true" : "false", hot_requests, hot_p50_ms,
      hot_p99_ms, burst_clients, burst_requests, burst_answered.load(),
      burst_seconds, static_cast<unsigned long long>(requests_served),
      gates_ok ? "true" : "false");

  return gates_ok ? 0 : 1;
}
