// Ablation bench for the design choices DESIGN.md calls out beyond the
// paper's main figures:
//   1. Inner-pipeline fusion (Fig. 3d) vs the recursive multi-level
//      pipeline (Fig. 3c).
//   2. Shared-memory swizzling (the bank-conflict mitigation the paper
//      augments every compiler with).
//   3. Synchronization-slack (wait_ahead) sensitivity through the stage
//      count sweep.
#include <cstdio>

#include "bench_util.h"
#include "target/gpu_spec.h"
#include "workloads/ops.h"

using namespace alcop;  // NOLINT(build/namespaces) - bench driver

int main() {
  target::GpuSpec spec = target::AmpereSpec();
  std::printf("Ablation: inner-pipeline fusion and swizzling (%s)\n\n",
              spec.name.c_str());
  std::printf("%-16s | %10s %10s %8s | %10s %10s %8s\n", "operator",
              "fused", "recursive", "gain", "swizzle", "conflict", "gain");
  bench::PrintRule(84);

  for (const schedule::GemmOp& op : workloads::BenchmarkOps()) {
    // Best schedule among the genuinely multi-level ones (inner-pipeline
    // fusion needs smem_stages >= 3: with 2 stages the one-chunk prefetch
    // slack consumes the entire pipeline depth).
    tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
    tuner::TuningResult exhaustive = tuner::ExhaustiveSearch(task);
    double best_cycles = std::numeric_limits<double>::infinity();
    schedule::ScheduleConfig best;
    bool found = false;
    for (size_t i = 0; i < exhaustive.trials.size(); ++i) {
      const schedule::ScheduleConfig& config =
          task.space[exhaustive.trials[i]];
      if (config.smem_stages < 3 || config.reg_stages < 2) continue;
      if (exhaustive.measured[i] < best_cycles) {
        best_cycles = exhaustive.measured[i];
        best = config;
        found = true;
      }
    }
    if (!found) continue;

    schedule::ScheduleConfig recursive = best;
    recursive.inner_fusion = false;
    schedule::ScheduleConfig conflicted = best;
    conflicted.swizzle = false;

    double fused = sim::CompileAndSimulate(op, best, spec).cycles;
    double drained = sim::CompileAndSimulate(op, recursive, spec).cycles;
    double no_swizzle = sim::CompileAndSimulate(op, conflicted, spec).cycles;

    std::printf("%-16s | %10.0f %10.0f %7.2fx | %10.0f %10.0f %7.2fx\n",
                op.name.c_str(), fused, drained, drained / fused, fused,
                no_swizzle, no_swizzle / fused);
  }

  // ---- Extension study: split-K vs pipelining ----
  // Two remedies for parallelism-starved GEMMs: split the reduction axis
  // over extra threadblocks (CUTLASS splitK, not in TVM v0.8 or the
  // paper's search space) or pipeline within each threadblock (ALCOP).
  std::printf("\nSplit-K vs pipelining on parallelism-starved operators:\n");
  std::printf("%-16s | %10s %12s %12s %14s\n", "operator", "TVM",
              "TVM+splitK", "ALCOP", "ALCOP+splitK");
  for (const char* name : {"MM_RN50_FC", "MM_BERT_FC2", "BMM_BERT_SV"}) {
    const schedule::GemmOp& starved = workloads::FindOp(name);
    auto best_of = [&](tuner::SpaceOptions options, bool allow_pipeline) {
      if (!allow_pipeline) {
        options.smem_stages = {1};
        options.reg_stages = {1};
      }
      tuner::TuningTask t = tuner::MakeSimulatorTask(starved, spec, options);
      tuner::TuningResult r = tuner::ExhaustiveSearch(t);
      return r.BestInFirstK(r.trials.size());
    };
    double tvm = best_of(tuner::SpaceOptions(), false);
    double tvm_split = best_of(tuner::SpaceOptions::WithSplitK(), false);
    double alcop = best_of(tuner::SpaceOptions(), true);
    double alcop_split = best_of(tuner::SpaceOptions::WithSplitK(), true);
    std::printf("%-16s | %10.0f %12.0f %12.0f %14.0f\n", name, tvm, tvm_split,
                alcop, alcop_split);
  }

  // ---- Extension study: CTA rasterization (threadblock swizzle) ----
  std::printf("\nCTA rasterization on a large square GEMM (8192^2 x 4096, "
              "128x128x32, 3/2 stages):\n");
  {
    schedule::GemmOp big = schedule::MakeMatmul("MM_8192", 8192, 8192, 4096);
    schedule::ScheduleConfig config;
    config.tile = {128, 128, 32, 64, 64, 16};
    config.smem_stages = 3;
    config.reg_stages = 2;
    for (int raster : {1, 4, 8, 16}) {
      config.raster_block = raster;
      sim::KernelTiming timing = sim::CompileAndSimulate(big, config, spec);
      sim::TrafficAnalysis traffic = sim::AnalyzeTraffic(
          big, config, spec, timing.threadblocks_per_sm);
      std::printf("  raster=%2d : %10.0f cycles (%5.1f TFLOP/s), working set "
                  "%5.1f MB, DRAM fractions A=%.3f B=%.3f\n",
                  raster, timing.cycles, timing.tflops,
                  traffic.working_set_bytes / 1e6, traffic.a_dram_fraction,
                  traffic.b_dram_fraction);
    }
  }

  std::printf("\nStage sweep on MM_BERT_FC2 (128x128x32 tiles):\n");
  std::printf("%8s %8s %12s\n", "smem", "reg", "cycles");
  schedule::GemmOp op = workloads::FindOp("MM_BERT_FC2");
  for (int smem : {1, 2, 3, 4, 5, 6}) {
    for (int reg : {1, 2}) {
      schedule::ScheduleConfig config;
      config.tile = {.tb_m = 128, .tb_n = 128, .tb_k = 32,
                     .warp_m = 64, .warp_n = 64, .warp_k = 16};
      config.smem_stages = smem;
      config.reg_stages = reg;
      sim::KernelTiming timing = sim::CompileAndSimulate(op, config, spec);
      std::printf("%8d %8d %12.0f%s\n", smem, reg,
                  timing.feasible ? timing.cycles : -1.0,
                  timing.feasible ? "" : "  (does not fit)");
    }
  }
  return 0;
}
