// Shared helpers for the per-figure benchmark binaries: a memoizing
// wrapper around the simulator measurement (so exhaustive sweeps can be
// reused by the search strategies), and small formatting utilities.
#ifndef ALCOP_BENCH_BENCH_UTIL_H_
#define ALCOP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>

#include "sim/launch.h"
#include "tuner/strategy.h"

namespace alcop {
namespace bench {

// Wraps a tuning task's measurement with a cache keyed by the config
// text, so exhaustive search results are reused by every strategy run in
// the same binary.
inline void Memoize(tuner::TuningTask& task) {
  auto cache =
      std::make_shared<std::unordered_map<std::string, double>>();
  auto inner = task.measure;
  task.measure = [cache, inner](const schedule::ScheduleConfig& config) {
    std::string key = config.ToString();
    auto it = cache->find(key);
    if (it != cache->end()) return it->second;
    double cycles = inner(config);
    cache->emplace(std::move(key), cycles);
    return cycles;
  };
}

// Best cycles within a subset of the space selected by `keep`.
template <typename Predicate>
double BestWhere(const tuner::TuningTask& task,
                 const tuner::TuningResult& exhaustive, Predicate keep) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < exhaustive.trials.size(); ++i) {
    const schedule::ScheduleConfig& config =
        task.space[exhaustive.trials[i]];
    if (keep(config) && exhaustive.measured[i] < best) {
      best = exhaustive.measured[i];
    }
  }
  return best;
}

inline void PrintRule(int width = 100) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace bench
}  // namespace alcop

#endif  // ALCOP_BENCH_BENCH_UTIL_H_
