// Shared helpers for the per-figure benchmark binaries: small formatting
// utilities. (Measurement memoization moved into the library proper: see
// sim/sim_cache.h — MakeSimulatorTask is cached process-wide, so benches
// no longer wrap tasks themselves.)
#ifndef ALCOP_BENCH_BENCH_UTIL_H_
#define ALCOP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <limits>

#include "sim/launch.h"
#include "tuner/strategy.h"

namespace alcop {
namespace bench {

// Best cycles within a subset of the space selected by `keep`.
template <typename Predicate>
double BestWhere(const tuner::TuningTask& task,
                 const tuner::TuningResult& exhaustive, Predicate keep) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < exhaustive.trials.size(); ++i) {
    const schedule::ScheduleConfig& config =
        task.space[exhaustive.trials[i]];
    if (keep(config) && exhaustive.measured[i] < best) {
      best = exhaustive.measured[i];
    }
  }
  return best;
}

inline void PrintRule(int width = 100) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace bench
}  // namespace alcop

#endif  // ALCOP_BENCH_BENCH_UTIL_H_
