// Compiler micro-benchmarks (google-benchmark): throughput of the
// compilation pipeline itself — lowering, the pipelining transformation,
// functional execution, trace building + discrete-event simulation, the
// analytical model, feature extraction and GBT fitting. These bound the
// cost of one tuning trial, which is what makes the Fig. 12/13 experiments
// tractable.
#include <benchmark/benchmark.h>

#include "perfmodel/analytical.h"
#include "pipeline/detect.h"
#include "pipeline/transform.h"
#include "schedule/lower.h"
#include "sim/executor.h"
#include "sim/launch.h"
#include "support/rng.h"
#include "target/gpu_spec.h"
#include "tuner/feature.h"
#include "tuner/gbt.h"
#include "tuner/space.h"

namespace {

using namespace alcop;  // NOLINT(build/namespaces) - bench driver

schedule::GemmOp BenchOp() {
  return schedule::MakeMatmul("mm", 2048, 2048, 2048);
}

schedule::ScheduleConfig BenchConfig() {
  schedule::ScheduleConfig config;
  config.tile = {.tb_m = 128, .tb_n = 128, .tb_k = 32,
                 .warp_m = 64, .warp_n = 64, .warp_k = 16};
  config.smem_stages = 3;
  config.reg_stages = 2;
  return config;
}

void BM_LowerSchedule(benchmark::State& state) {
  schedule::GemmOp op = BenchOp();
  target::GpuSpec spec = target::AmpereSpec();
  for (auto _ : state) {
    schedule::Schedule sched(op, BenchConfig());
    pipeline::AutoPipeline(sched, spec);
    benchmark::DoNotOptimize(schedule::LowerSchedule(sched).stmt);
  }
}
BENCHMARK(BM_LowerSchedule);

void BM_PipelineTransform(benchmark::State& state) {
  schedule::GemmOp op = BenchOp();
  target::GpuSpec spec = target::AmpereSpec();
  schedule::Schedule sched(op, BenchConfig());
  pipeline::AutoPipeline(sched, spec);
  schedule::LoweredKernel kernel = schedule::LowerSchedule(sched);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline::ApplyPipelineTransform(kernel.stmt).stmt);
  }
}
BENCHMARK(BM_PipelineTransform);

void BM_FunctionalExecution(benchmark::State& state) {
  schedule::GemmOp op = schedule::MakeMatmul("mm", 64, 64, 64);
  schedule::ScheduleConfig config;
  config.tile = {.tb_m = 32, .tb_n = 32, .tb_k = 16,
                 .warp_m = 16, .warp_n = 16, .warp_k = 8};
  config.smem_stages = 3;
  config.reg_stages = 2;
  target::GpuSpec spec = target::AmpereSpec();
  sim::CompiledKernel compiled = sim::CompileKernel(op, config, spec);
  Rng rng(1);
  std::vector<float> a(static_cast<size_t>(op.m * op.k));
  std::vector<float> b(static_cast<size_t>(op.n * op.k));
  for (float& v : a) v = static_cast<float>(rng.Uniform(-1, 1));
  for (float& v : b) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto _ : state) {
    sim::Executor exec;
    exec.Bind(compiled.kernel.a, a);
    exec.Bind(compiled.kernel.b, b);
    exec.Run(compiled.transformed.stmt);
    benchmark::DoNotOptimize(exec.Data(compiled.kernel.c));
  }
}
BENCHMARK(BM_FunctionalExecution);

void BM_TimingSimulation(benchmark::State& state) {
  schedule::GemmOp op = BenchOp();
  target::GpuSpec spec = target::AmpereSpec();
  schedule::ScheduleConfig config = BenchConfig();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::CompileAndSimulate(op, config, spec).cycles);
  }
}
BENCHMARK(BM_TimingSimulation);

void BM_AnalyticalModel(benchmark::State& state) {
  schedule::GemmOp op = BenchOp();
  target::GpuSpec spec = target::AmpereSpec();
  schedule::ScheduleConfig config = BenchConfig();
  for (auto _ : state) {
    benchmark::DoNotOptimize(perfmodel::PredictCycles(op, config, spec));
  }
}
BENCHMARK(BM_AnalyticalModel);

void BM_SpaceEnumeration(benchmark::State& state) {
  schedule::GemmOp op = BenchOp();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tuner::EnumerateSpace(op).size());
  }
}
BENCHMARK(BM_SpaceEnumeration);

void BM_GbtFit(benchmark::State& state) {
  schedule::GemmOp op = BenchOp();
  target::GpuSpec spec = target::AmpereSpec();
  std::vector<schedule::ScheduleConfig> space = tuner::EnumerateSpace(op);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (size_t i = 0; i < space.size() && i < 200; ++i) {
    x.push_back(tuner::ExtractFeatures(op, space[i], spec));
    y.push_back(perfmodel::PredictCycles(op, space[i], spec));
  }
  for (auto _ : state) {
    tuner::GbtModel model;
    model.Fit(x, y);
    benchmark::DoNotOptimize(model.Predict(x[0]));
  }
}
BENCHMARK(BM_GbtFit);

}  // namespace

BENCHMARK_MAIN();
