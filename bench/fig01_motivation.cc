// Experiment E1 — Fig. 1(b): the motivating example.
//
// A 2048x2048x2048 half-precision MatMul on the simulated A100, sweeping
// threadblock tile sizes with and without pipelining. Reproduces the
// paper's observation: with tiling only, performance is always
// sub-optimal — small tiles waste bandwidth on re-loads, large tiles
// starve inter-tile parallelism; pipelining unleashes intra-tile
// parallelism and wins under large tiling.
#include <cstdio>

#include "bench_util.h"
#include "schedule/tensor.h"
#include "target/gpu_spec.h"

using namespace alcop;  // NOLINT(build/namespaces) - bench driver

int main() {
  target::GpuSpec spec = target::AmpereSpec();
  schedule::GemmOp op = schedule::MakeMatmul("MM_2048", 2048, 2048, 2048);

  std::printf("Fig. 1(b): 2048x2048x2048 MatMul, tiling vs pipelining (%s)\n\n",
              spec.name.c_str());
  std::printf("%-12s %-10s | %16s | %24s\n", "tb tile", "warp tile",
              "tiling only TFLOP/s", "with pipelining TFLOP/s");
  bench::PrintRule(74);

  struct TilePoint {
    int64_t tb_m, tb_n, warp_m, warp_n;
  };
  double best_tiling_only = 0.0, best_pipelined = 0.0;
  for (TilePoint p : {TilePoint{32, 32, 32, 32},
                      TilePoint{64, 64, 32, 32},
                      TilePoint{128, 64, 64, 32},
                      TilePoint{128, 128, 64, 64},
                      TilePoint{256, 128, 64, 64},
                      TilePoint{256, 256, 64, 64}}) {
    schedule::ScheduleConfig base;
    base.tile = {p.tb_m, p.tb_n, 32, p.warp_m, p.warp_n, 16};

    sim::KernelTiming tiling_only =
        sim::CompileAndSimulate(op, base, spec);

    // Best pipelined variant at this tile.
    double pipelined_tflops = 0.0;
    for (int smem : {2, 3, 4}) {
      for (int reg : {1, 2}) {
        schedule::ScheduleConfig config = base;
        config.smem_stages = smem;
        config.reg_stages = reg;
        if (!schedule::ValidateConfig(op, config)) continue;
        sim::KernelTiming timing = sim::CompileAndSimulate(op, config, spec);
        if (timing.feasible && timing.tflops > pipelined_tflops) {
          pipelined_tflops = timing.tflops;
        }
      }
    }

    double tiling_tflops = tiling_only.feasible ? tiling_only.tflops : 0.0;
    best_tiling_only = std::max(best_tiling_only, tiling_tflops);
    best_pipelined = std::max(best_pipelined, pipelined_tflops);
    std::printf("%4ldx%-7ld %3ldx%-6ld | %16.1f | %24.1f\n", p.tb_m, p.tb_n,
                p.warp_m, p.warp_n, tiling_tflops, pipelined_tflops);
  }

  bench::PrintRule(74);
  std::printf("best tiling-only: %.1f TFLOP/s; best with pipelining: %.1f "
              "TFLOP/s (%.2fx)\n",
              best_tiling_only, best_pipelined,
              best_pipelined / best_tiling_only);
  return 0;
}
