// Performance-model validation beyond Fig. 12's best-in-top-k: rank
// correlation (Spearman) and median relative error of the analytical and
// bottleneck models against the simulator, over each operator's full
// schedule space. A cost model only needs correct *ordering* to drive
// search; this bench quantifies exactly that.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "perfmodel/analytical.h"
#include "perfmodel/bottleneck.h"
#include "target/gpu_spec.h"
#include "workloads/ops.h"

using namespace alcop;  // NOLINT(build/namespaces) - bench driver

namespace {

std::vector<double> Ranks(const std::vector<double>& values) {
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(values.size());
  for (size_t i = 0; i < order.size(); ++i) {
    ranks[order[i]] = static_cast<double>(i);
  }
  return ranks;
}

double Spearman(const std::vector<double>& a, const std::vector<double>& b) {
  std::vector<double> ra = Ranks(a), rb = Ranks(b);
  double n = static_cast<double>(a.size());
  double mean = (n - 1) / 2.0;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (ra[i] - mean) * (rb[i] - mean);
    va += (ra[i] - mean) * (ra[i] - mean);
    vb += (rb[i] - mean) * (rb[i] - mean);
  }
  return cov / std::sqrt(va * vb);
}

double MedianRelativeError(const std::vector<double>& predicted,
                           const std::vector<double>& measured) {
  std::vector<double> errors;
  for (size_t i = 0; i < predicted.size(); ++i) {
    errors.push_back(std::abs(predicted[i] - measured[i]) / measured[i]);
  }
  std::nth_element(errors.begin(), errors.begin() + errors.size() / 2,
                   errors.end());
  return errors[errors.size() / 2];
}

}  // namespace

int main() {
  target::GpuSpec spec = target::AmpereSpec();
  std::printf("Performance-model validation against the simulator "
              "(full schedule spaces)\n\n");
  std::printf("%-16s %7s | %11s %11s | %11s %11s\n", "operator", "space",
              "anal rho", "botl rho", "anal err", "botl err");
  bench::PrintRule(78);

  double rho_sum[2] = {0, 0}, err_sum[2] = {0, 0};
  int count = 0;
  for (const schedule::GemmOp& op : workloads::BenchmarkOps()) {
    tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
    std::vector<double> measured, analytical, bottleneck;
    for (const schedule::ScheduleConfig& config : task.space) {
      double cycles = task.measure(config);
      if (!std::isfinite(cycles)) continue;  // unfittable configs excluded
      double predicted = perfmodel::PredictCycles(op, config, spec);
      if (!std::isfinite(predicted)) continue;
      measured.push_back(cycles);
      analytical.push_back(predicted);
      bottleneck.push_back(
          perfmodel::BottleneckPredictCycles(op, config, spec));
    }
    double rho_a = Spearman(analytical, measured);
    double rho_b = Spearman(bottleneck, measured);
    double err_a = MedianRelativeError(analytical, measured);
    double err_b = MedianRelativeError(bottleneck, measured);
    std::printf("%-16s %7zu | %11.2f %11.2f | %10.0f%% %10.0f%%\n",
                op.name.c_str(), measured.size(), rho_a, rho_b, 100 * err_a,
                100 * err_b);
    rho_sum[0] += rho_a;
    rho_sum[1] += rho_b;
    err_sum[0] += err_a;
    err_sum[1] += err_b;
    ++count;
  }

  bench::PrintRule(78);
  std::printf("%-16s %7s | %11.2f %11.2f | %10.0f%% %10.0f%%\n", "average",
              "", rho_sum[0] / count, rho_sum[1] / count,
              100 * err_sum[0] / count, 100 * err_sum[1] / count);
  std::printf("\nthe analytical model must dominate on rank correlation "
              "(what tuning needs);\nabsolute error matters less and is "
              "reported for completeness.\n");
  return 0;
}
