// Experiment E6 — Fig. 13 / Table II: search efficiency of the four
// schedule-tuning methods at trial budgets of 10 and 50, normalized to
// exhaustive search:
//   Grid       : plain enumeration, no learning
//   XGB        : boosted cost model + simulated annealing (TVM default)
//   Anal-only  : rank everything by the analytical model
//   Anal+XGB   : ALCOP's model-assisted tuner (pre-trained on analytical
//                predictions, fine-tuned on measurements)
//
// Each strategy runs ONCE per (op, seed) at the maximum trial budget; the
// per-k curve is read off that single run with BestInFirstK(k) prefixes —
// exactly the paper's best-in-first-k definition, and several times
// cheaper than re-running the tuner per budget. Measurement itself is
// parallel (ALCOP_THREADS) and cached process-wide, so the exhaustive
// sweep is the only full compile pass per operator.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "target/gpu_spec.h"
#include "workloads/ops.h"

using namespace alcop;  // NOLINT(build/namespaces) - bench driver

namespace {

constexpr uint64_t kSeeds[] = {1, 2, 3};
constexpr size_t kBudgets[] = {10, 50};
constexpr size_t kMaxBudget = 50;

// One full-budget run per seed; the caller reads prefix curves from them.
std::vector<tuner::TuningResult> XgbRuns(const tuner::TuningTask& task,
                                         bool pretrain) {
  std::vector<tuner::TuningResult> runs;
  for (uint64_t seed : kSeeds) {
    tuner::XgbOptions options;
    options.seed = seed;
    options.pretrain_with_analytical = pretrain;
    runs.push_back(tuner::XgbTuner(task, kMaxBudget, options));
  }
  return runs;
}

double MeanBestInK(const std::vector<tuner::TuningResult>& runs, size_t k) {
  double sum = 0.0;
  for (const tuner::TuningResult& run : runs) sum += run.BestInFirstK(k);
  return sum / static_cast<double>(runs.size());
}

}  // namespace

int main() {
  target::GpuSpec spec = target::AmpereSpec();

  std::printf("Fig. 13: best-in-k-trials of four search methods "
              "(normalized to exhaustive search, %s)\n\n",
              spec.name.c_str());
  std::printf("%-16s | %6s %6s %6s %8s | %6s %6s %6s %8s\n", "", "grid",
              "xgb", "anal", "anal+xgb", "grid", "xgb", "anal", "anal+xgb");
  std::printf("%-16s | %29s          | %29s\n", "operator", "k = 10 trials",
              "k = 50 trials");
  bench::PrintRule(84);

  double sums[8] = {0};
  int count = 0;
  for (const schedule::GemmOp& op : workloads::BenchmarkOps()) {
    tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
    tuner::TuningResult exhaustive = tuner::ExhaustiveSearch(task);
    double best = exhaustive.BestInFirstK(exhaustive.trials.size());

    tuner::TuningResult grid = tuner::GridSearch(task, kMaxBudget);
    tuner::TuningResult anal = tuner::AnalyticalRanking(task, kMaxBudget);
    std::vector<tuner::TuningResult> xgb = XgbRuns(task, /*pretrain=*/false);
    std::vector<tuner::TuningResult> anal_xgb =
        XgbRuns(task, /*pretrain=*/true);

    double cells[8];
    int c = 0;
    for (size_t k : kBudgets) {
      cells[c++] = best / grid.BestInFirstK(k);
      cells[c++] = best / MeanBestInK(xgb, k);
      cells[c++] = best / anal.BestInFirstK(k);
      cells[c++] = best / MeanBestInK(anal_xgb, k);
    }

    std::printf("%-16s |", op.name.c_str());
    for (int i = 0; i < 8; ++i) {
      std::printf(i == 3 || i == 7 ? " %7.0f%%" : " %5.0f%%",
                  100.0 * cells[i]);
      if (i == 3) std::printf(" |");
      sums[i] += cells[i];
    }
    std::printf("\n");
    ++count;
  }

  bench::PrintRule(84);
  std::printf("%-16s |", "average");
  for (int i = 0; i < 8; ++i) {
    std::printf(i == 3 || i == 7 ? " %7.0f%%" : " %5.0f%%",
                100.0 * sums[i] / count);
    if (i == 3) std::printf(" |");
  }
  std::printf("\n\npaper reference @10 trials: XGB 70%%, Anal-only 79%%, "
              "Anal+XGB 95%%;\n@50 trials: XGB 86%%, Anal-only 92%%, "
              "Anal+XGB 99%% (>40x fewer trials than exhaustive)\n");
  return 0;
}
