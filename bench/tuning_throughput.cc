// Tuning-throughput bench: measures the wall-clock effect of the parallel
// measurement engine and the compile+simulate cache on the Fig. 13
// workload, and emits one machine-readable JSON object (consumed by
// scripts/bench_tuning.sh into BENCH_tuning.json so the perf trajectory
// is tracked across PRs).
//
// Three phases over the same strategy suite (exhaustive + grid + anal +
// 2x3 XGB runs per operator):
//   serial   : 1 thread, cold cache  — the pre-PR baseline
//   parallel : N threads, cold cache — the thread-pool speedup
//   cached   : N threads, warm cache — the memoization ceiling
//
// The thread-pool speedup scales with the machine: on a single-core host
// (hardware_cores = 1) it degenerates to ~1.0x by construction, so the
// JSON also isolates the cache's effect on the measurement path alone
// (uncached vs warm exhaustive sweep), which holds at any core count.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/launch.h"
#include "sim/sim_cache.h"
#include "support/parallel.h"
#include "target/gpu_spec.h"
#include "tuner/strategy.h"
#include "workloads/ops.h"

using namespace alcop;  // NOLINT(build/namespaces) - bench driver

namespace {

constexpr uint64_t kSeeds[] = {1, 2, 3};
constexpr size_t kMaxBudget = 50;

// The Fig. 13 strategy suite for one operator. Returns a checksum of the
// measured cycles so phases can assert they computed identical results.
double RunSuite(const tuner::TuningTask& task) {
  double checksum = 0.0;
  auto fold = [&](const tuner::TuningResult& result) {
    for (double cycles : result.measured) {
      if (cycles < 1e30) checksum += cycles;
    }
  };
  fold(tuner::ExhaustiveSearch(task));
  fold(tuner::GridSearch(task, kMaxBudget));
  fold(tuner::AnalyticalRanking(task, kMaxBudget));
  for (bool pretrain : {false, true}) {
    for (uint64_t seed : kSeeds) {
      tuner::XgbOptions options;
      options.seed = seed;
      options.pretrain_with_analytical = pretrain;
      fold(tuner::XgbTuner(task, kMaxBudget, options));
    }
  }
  return checksum;
}

double RunAllOps(const std::vector<tuner::TuningTask>& tasks) {
  double checksum = 0.0;
  for (const tuner::TuningTask& task : tasks) checksum += RunSuite(task);
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = support::ThreadsFromEnv();
  if (argc > 1) threads = std::max(1, std::atoi(argv[1]));
  // Clamp the request to the machine, like ThreadsFromEnv does: fanning
  // eight workers out on one core only measures scheduler contention (the
  // speedup-0.90 pathology), not the parallel engine.
  unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) threads = std::min(threads, static_cast<int>(hw));

  target::GpuSpec spec = target::AmpereSpec();
  std::vector<tuner::TuningTask> tasks;
  size_t space_total = 0;
  for (const schedule::GemmOp& op : workloads::BenchmarkOps()) {
    tasks.push_back(tuner::MakeSimulatorTask(op, spec));
    space_total += tasks.back().space.size();
  }

  // All phases time on the observability layer's trace clock
  // (obs::Stopwatch), the same clock behind ALCOP_TRACE_SCOPE spans.
  obs::Stopwatch watch;

  // Phase 1: serial baseline, cold cache.
  support::SetGlobalThreads(1);
  sim::ResetSimCache();
  watch.Restart();
  double serial_checksum = RunAllOps(tasks);
  double serial_seconds = watch.Seconds();
  sim::SimCacheStats serial_stats = sim::GetSimCacheStats();

  // Phase 2: parallel, cold cache.
  support::SetGlobalThreads(threads);
  sim::ResetSimCache();
  watch.Restart();
  double parallel_checksum = RunAllOps(tasks);
  double parallel_seconds = watch.Seconds();
  sim::SimCacheStats parallel_stats = sim::GetSimCacheStats();

  // Phase 3: warm cache (the repeated-sweep case every bench binary hits).
  watch.Restart();
  double cached_checksum = RunAllOps(tasks);
  double cached_seconds = watch.Seconds();
  sim::SimCacheStats cached_stats = sim::GetSimCacheStats();

  // Measurement path in isolation: one exhaustive sweep per operator with
  // the cache bypassed, then the same sweep through the warm cache. This
  // is the cache's contribution independent of model fitting and of how
  // many cores the host has.
  std::vector<tuner::TuningTask> direct_tasks = tasks;
  for (tuner::TuningTask& task : direct_tasks) {
    schedule::GemmOp op = task.op;
    target::GpuSpec task_spec = task.spec;
    task.measure = [op, task_spec](const schedule::ScheduleConfig& config) {
      sim::KernelTiming timing = sim::CompileAndSimulate(op, config, task_spec);
      return timing.feasible ? timing.cycles
                             : std::numeric_limits<double>::infinity();
    };
  }
  watch.Restart();
  double nocache_checksum = 0.0;
  for (const tuner::TuningTask& task : direct_tasks) {
    for (double cycles : tuner::ExhaustiveSearch(task).measured) {
      if (cycles < 1e30) nocache_checksum += cycles;
    }
  }
  double measure_nocache_seconds = watch.Seconds();
  watch.Restart();
  double warm_checksum = 0.0;
  for (const tuner::TuningTask& task : tasks) {
    for (double cycles : tuner::ExhaustiveSearch(task).measured) {
      if (cycles < 1e30) warm_checksum += cycles;
    }
  }
  double measure_cached_seconds = watch.Seconds();

  // Static pre-filter effect: one cold exhaustive sweep per operator with
  // the occupancy pre-filter off (every infeasible config pays a full
  // compile+simulate before the simulator rejects it) and one with it on
  // (infeasible configs are answered from config arithmetic). The filter
  // is verdict-identical to the simulator, so the checksums must match;
  // what changes is the effective measurement rate.
  tuner::SpaceOptions no_filter;
  no_filter.static_prefilter = false;
  std::vector<tuner::TuningTask> unfiltered_tasks;
  for (const schedule::GemmOp& op : workloads::BenchmarkOps()) {
    unfiltered_tasks.push_back(tuner::MakeSimulatorTask(op, spec, no_filter));
  }
  auto sweep = [](const std::vector<tuner::TuningTask>& all) {
    double checksum = 0.0;
    for (const tuner::TuningTask& task : all) {
      for (double cycles : tuner::ExhaustiveSearch(task).measured) {
        if (cycles < 1e30) checksum += cycles;
      }
    }
    return checksum;
  };
  sim::ResetSimCache();
  watch.Restart();
  double filter_off_checksum = sweep(unfiltered_tasks);
  double filter_off_seconds = watch.Seconds();
  obs::Counter& pruned_counter =
      obs::Registry::Global().GetCounter("tuner.pruned_static");
  uint64_t pruned_before = pruned_counter.Value();
  sim::ResetSimCache();
  watch.Restart();
  double filter_on_checksum = sweep(tasks);
  double filter_on_seconds = watch.Seconds();
  uint64_t configs_pruned_static = pruned_counter.Value() - pruned_before;
  double rate_off = filter_off_seconds > 0.0
                        ? static_cast<double>(space_total) / filter_off_seconds
                        : 0.0;
  double rate_on = filter_on_seconds > 0.0
                       ? static_cast<double>(space_total) / filter_on_seconds
                       : 0.0;

  // Model-guided pruning: the effective-throughput experiment. Baseline:
  // the single-phase AST-interpreter sweep (what a measurement cost
  // before the two-phase split), timed on this machine so the gain is
  // host-independent. Against it: a cold sweep where the analytical
  // model ranks the whole space and only the top-K survivors (plus the
  // exploration tail) pay a compile+replay — every other config is
  // answered from the keep-set in O(1). "Effective" rate counts the
  // *whole* space as covered, which the coverage gate in
  // bench/calibration.cc (and the best-found check below) justifies.
  obs::Counter& model_counter =
      obs::Registry::Global().GetCounter("tuner.pruned_model");

  std::vector<tuner::TuningTask> interp_tasks = tasks;
  for (tuner::TuningTask& task : interp_tasks) {
    schedule::GemmOp op = task.op;
    target::GpuSpec task_spec = task.spec;
    task.measure = [op, task_spec](const schedule::ScheduleConfig& config) {
      std::string why;
      if (!schedule::ValidateConfig(op, config, &why)) {
        return std::numeric_limits<double>::infinity();
      }
      sim::CompiledKernel compiled = sim::CompileKernel(op, config, task_spec);
      sim::KernelTiming timing = sim::InterpretKernel(compiled, task_spec);
      return timing.feasible ? timing.cycles
                             : std::numeric_limits<double>::infinity();
    };
  }
  watch.Restart();
  std::vector<double> interp_best;
  for (const tuner::TuningTask& task : interp_tasks) {
    double best = std::numeric_limits<double>::infinity();
    for (double cycles : tuner::ExhaustiveSearch(task).measured) {
      best = std::min(best, cycles);
    }
    interp_best.push_back(best);
  }
  double interp_seconds = watch.Seconds();

  uint64_t model_before = model_counter.Value();
  sim::ResetSimCache();
  watch.Restart();
  // Task construction is inside the timed region: it is where the model
  // scores and ranks the space, which is real work the pruned sweep pays.
  tuner::SpaceOptions pruned_options;
  pruned_options.model_topk = tuner::SpaceOptions::kDefaultModelTopK;
  std::vector<double> pruned_best;
  for (const schedule::GemmOp& op : workloads::BenchmarkOps()) {
    tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec, pruned_options);
    double best = std::numeric_limits<double>::infinity();
    for (double cycles : tuner::ExhaustiveSearch(task).measured) {
      best = std::min(best, cycles);
    }
    pruned_best.push_back(best);
  }
  double pruned_seconds = watch.Seconds();
  uint64_t configs_pruned_model = model_counter.Value() - model_before;

  // The pruning guarantee: per operator, the best config the pruned sweep
  // finds must be *bit-identical* to the unpruned exhaustive best (the
  // replay core is deterministic, so equality is exact, not approximate).
  bool best_found_unchanged = interp_best.size() == pruned_best.size();
  for (size_t i = 0; best_found_unchanged && i < interp_best.size(); ++i) {
    best_found_unchanged = interp_best[i] == pruned_best[i];
  }
  double interp_rate =
      interp_seconds > 0.0 ? static_cast<double>(space_total) / interp_seconds
                           : 0.0;
  double effective_rate =
      pruned_seconds > 0.0 ? static_cast<double>(space_total) / pruned_seconds
                           : 0.0;
  double effective_gain = interp_rate > 0.0 ? effective_rate / interp_rate : 0.0;

  bool deterministic = serial_checksum == parallel_checksum &&
                       serial_checksum == cached_checksum &&
                       nocache_checksum == warm_checksum &&
                       filter_off_checksum == filter_on_checksum;
  double speedup =
      parallel_seconds > 0.0 ? serial_seconds / parallel_seconds : 0.0;
  double cache_speedup = measure_cached_seconds > 0.0
                             ? measure_nocache_seconds / measure_cached_seconds
                             : 0.0;
  uint64_t rerun_hits = cached_stats.hits - parallel_stats.hits;
  uint64_t rerun_misses = cached_stats.misses - parallel_stats.misses;

  std::printf(
      "{\n"
      "  \"bench\": \"tuning_throughput\",\n"
      "  \"threads\": %d,\n"
      "  \"hardware_cores\": %u,\n"
      "  \"operators\": %zu,\n"
      "  \"space_configs\": %zu,\n"
      "  \"serial_seconds\": %.4f,\n"
      "  \"parallel_seconds\": %.4f,\n"
      "  \"speedup\": %.2f,\n"
      "  \"cached_rerun_seconds\": %.4f,\n"
      "  \"measure_nocache_seconds\": %.4f,\n"
      "  \"measure_cached_seconds\": %.4f,\n"
      "  \"cache_speedup\": %.2f,\n"
      "  \"configs_pruned_static\": %llu,\n"
      "  \"prefilter_off_seconds\": %.4f,\n"
      "  \"prefilter_on_seconds\": %.4f,\n"
      "  \"configs_per_second_prefilter_off\": %.1f,\n"
      "  \"configs_per_second_prefilter_on\": %.1f,\n"
      "  \"deterministic_across_threads\": %s,\n"
      "  \"model_pruning\": {\n"
      "    \"model_topk\": %d,\n"
      "    \"interpreter_seconds\": %.4f,\n"
      "    \"interpreter_configs_per_sec\": %.1f,\n"
      "    \"pruned_sweep_seconds\": %.4f,\n"
      "    \"effective_configs_per_sec\": %.1f,\n"
      "    \"effective_configs_per_sec_gain\": %.2f,\n"
      "    \"configs_pruned_model\": %llu,\n"
      "    \"best_found_unchanged\": %s\n"
      "  },\n"
      "  \"cache\": {\n"
      "    \"cold_hits\": %llu,\n"
      "    \"cold_misses\": %llu,\n"
      "    \"cold_hit_rate\": %.4f,\n"
      "    \"warm_rerun_hits\": %llu,\n"
      "    \"warm_rerun_misses\": %llu,\n"
      "    \"entries\": %llu\n"
      "  }\n"
      "}\n",
      threads, hw == 0 ? 1 : hw, tasks.size(), space_total, serial_seconds,
      parallel_seconds, speedup, cached_seconds, measure_nocache_seconds,
      measure_cached_seconds, cache_speedup,
      static_cast<unsigned long long>(configs_pruned_static),
      filter_off_seconds, filter_on_seconds, rate_off, rate_on,
      deterministic ? "true" : "false",
      tuner::SpaceOptions::kDefaultModelTopK, interp_seconds, interp_rate,
      pruned_seconds, effective_rate, effective_gain,
      static_cast<unsigned long long>(configs_pruned_model),
      best_found_unchanged ? "true" : "false",
      static_cast<unsigned long long>(parallel_stats.hits),
      static_cast<unsigned long long>(parallel_stats.misses),
      parallel_stats.HitRate(),
      static_cast<unsigned long long>(rerun_hits),
      static_cast<unsigned long long>(rerun_misses),
      static_cast<unsigned long long>(cached_stats.entries));
  (void)serial_stats;
  // Gate on correctness and the pruning guarantee; wall-clock gains are
  // reported (and gated in CI against the committed baseline) but a slow
  // machine alone never fails the bench binary.
  return deterministic && best_found_unchanged ? 0 : 1;
}
