// Experiment E4 — Fig. 11: ALCOP versus vendor libraries (cuBLAS/cuDNN
// stand-in). Libraries pick from a fixed hand-written kernel menu with an
// instruction-scheduling edge; ALCOP searches its whole schedule space.
// The paper reports on-par performance (93% average) with compiler wins on
// unusual shapes.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "target/gpu_spec.h"
#include "workloads/library.h"
#include "workloads/ops.h"

using namespace alcop;  // NOLINT(build/namespaces) - bench driver

int main() {
  target::GpuSpec spec = target::AmpereSpec();

  std::printf("Fig. 11: single-operator performance normalized to library "
              "kernels (%s)\n\n",
              spec.name.c_str());
  std::printf("%-16s %12s %12s | %10s\n", "operator", "library(cyc)",
              "ALCOP(cyc)", "normalized");
  bench::PrintRule(58);

  double log_sum = 0.0;
  int count = 0;
  for (const schedule::GemmOp& op : workloads::BenchmarkOps()) {
    double library = workloads::LibraryKernelCycles(op, spec);

    tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
    tuner::TuningResult exhaustive = tuner::ExhaustiveSearch(task);
    double alcop = exhaustive.BestInFirstK(exhaustive.trials.size());

    double normalized = library / alcop;  // >1: ALCOP faster than library
    std::printf("%-16s %12.0f %12.0f | %10.2f%s\n", op.name.c_str(), library,
                alcop, normalized, normalized > 1.0 ? "  (ALCOP wins)" : "");
    log_sum += std::log(normalized);
    ++count;
  }

  bench::PrintRule(58);
  std::printf("%-16s %25s | %10.2f   (geomean)\n", "average", "",
              std::exp(log_sum / count));
  std::printf("\npaper reference: on-par with libraries, 93%% normalized on "
              "average; compiler wins on shapes like BMM_BERT_QK\n");
  return 0;
}
