// Simulator-throughput bench: the compile-once/replay-many split in
// numbers. Over the Fig. 10 operator sweep it measures, per schedule
// config,
//   - the AST-interpreter path (validate + kernel compile + per-warp
//     trace interpretation — the pre-split single-phase pipeline), and
//   - the bytecode path: phase 1 (trace compile to a flat micro-op
//     program) timed separately from phase 2 (warm replay of that
//     program through the event-pool core),
// and emits one machine-readable JSON object (consumed by
// scripts/bench_sim.sh into BENCH_sim.json).
//
// Besides throughput it asserts the two correctness gates the CI
// perf-smoke job relies on:
//   - determinism: every replayed KernelTiming is bit-identical to the
//     interpreter's (cycles, microseconds, tflops, batch geometry), the
//     cycle checksums agree exactly, and sampled Timelines match span
//     for span;
//   - zero warm-replay allocation: after one warm-up replay of a
//     program, the timed replay must leave ReplayArena::CapacityBytes()
//     unchanged — any growth counts as a heap allocation on the hot
//     path and fails the bench.
// Wall-clock numbers are reported but never gated on.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "sim/desim.h"
#include "sim/launch.h"
#include "sim/sim_cache.h"
#include "tuner/strategy.h"
#include "workloads/ops.h"

using namespace alcop;  // NOLINT(build/namespaces) - bench driver

namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool SameTiming(const sim::KernelTiming& a, const sim::KernelTiming& b) {
  return a.feasible == b.feasible && a.reason == b.reason &&
         BitEqual(a.cycles, b.cycles) &&
         BitEqual(a.microseconds, b.microseconds) &&
         BitEqual(a.tflops, b.tflops) &&
         BitEqual(a.batch_cycles, b.batch_cycles) && a.batches == b.batches &&
         a.threadblocks_per_sm == b.threadblocks_per_sm;
}

bool SameTimeline(const sim::BatchTimeline& a, const sim::BatchTimeline& b) {
  if (a.threadblocks != b.threadblocks || a.num_warps != b.num_warps ||
      !BitEqual(a.timeline.makespan, b.timeline.makespan) ||
      a.timeline.spans.size() != b.timeline.spans.size()) {
    return false;
  }
  for (size_t i = 0; i < a.timeline.spans.size(); ++i) {
    const sim::TimelineSpan& x = a.timeline.spans[i];
    const sim::TimelineSpan& y = b.timeline.spans[i];
    if (x.tb != y.tb || x.warp != y.warp || x.kind != y.kind ||
        !BitEqual(x.start, y.start) || !BitEqual(x.end, y.end)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }
  // Quick mode (the CI perf-smoke job) strides the schedule space; the
  // full sweep is every config of every Fig. 10 operator.
  const int stride = quick ? 16 : 1;

  target::GpuSpec spec = target::AmpereSpec();
  std::vector<tuner::TuningTask> tasks;
  for (const schedule::GemmOp& op : workloads::BenchmarkOps()) {
    tasks.push_back(tuner::MakeSimulatorTask(op, spec));
  }

  sim::ReplayArena arena;
  int configs = 0, feasible = 0, mismatches = 0;
  int timeline_samples = 0, timeline_mismatches = 0;
  int warm_replay_allocations = 0;
  double t_interp = 0.0, t_compile = 0.0, t_replay = 0.0;
  double interp_checksum = 0.0, replay_checksum = 0.0;

  for (const tuner::TuningTask& task : tasks) {
    for (size_t c = 0; c < task.space.size(); c += stride) {
      const schedule::ScheduleConfig& config = task.space[c];
      ++configs;
      std::string why;
      if (!schedule::ValidateConfig(task.op, config, &why)) continue;

      // AST-interpreter path: exactly the work the single-phase pipeline
      // did per measurement before the split. Timed on the obs trace
      // clock (one clock for benches and profiler spans).
      obs::Stopwatch watch;
      sim::CompiledKernel compiled =
          sim::CompileKernel(task.op, config, spec);
      sim::KernelTiming interp = sim::InterpretKernel(compiled, spec);
      t_interp += watch.Seconds();

      // Phase 1: pay the IR walk once.
      watch.Restart();
      sim::SimProgram program = sim::CompileSimProgram(task.op, config, spec);
      t_compile += watch.Seconds();

      // Phase 2: warm replay. One untimed replay sizes the arena for this
      // program shape; the timed replay must not grow it.
      sim::KernelTiming warmup = sim::ReplaySimProgram(program, &arena);
      size_t capacity = arena.CapacityBytes();
      watch.Restart();
      sim::KernelTiming replay = sim::ReplaySimProgram(program, &arena);
      t_replay += watch.Seconds();
      if (arena.CapacityBytes() != capacity) ++warm_replay_allocations;
      if (!SameTiming(warmup, replay)) ++mismatches;

      if (!SameTiming(interp, replay)) {
        if (++mismatches <= 3) {
          std::fprintf(stderr, "MISMATCH %s: %.17g vs %.17g cycles\n",
                       config.ToString().c_str(), interp.cycles,
                       replay.cycles);
        }
      }
      if (!interp.feasible) continue;
      ++feasible;
      interp_checksum += interp.cycles;
      replay_checksum += replay.cycles;
      if (feasible % (quick ? 5 : 37) == 0) {
        ++timeline_samples;
        sim::BatchTimeline ta = sim::CaptureTimelineInterpreted(compiled, spec);
        sim::BatchTimeline tb = sim::CaptureTimeline(compiled, spec);
        if (!SameTimeline(ta, tb)) ++timeline_mismatches;
      }
    }
  }

  // Both memoization layers over the same sweep: a cold pass fills the
  // program cache and the timing cache; a second pass must be pure hits.
  sim::ResetSimCache();
  obs::Stopwatch cache_watch;
  for (const tuner::TuningTask& task : tasks) {
    for (size_t c = 0; c < task.space.size(); c += stride) {
      sim::CachedCompileAndSimulate(task.op, task.space[c], spec);
    }
  }
  double cache_cold_seconds = cache_watch.Seconds();
  cache_watch.Restart();
  for (const tuner::TuningTask& task : tasks) {
    for (size_t c = 0; c < task.space.size(); c += stride) {
      sim::CachedCompileAndSimulate(task.op, task.space[c], spec);
    }
  }
  double cache_warm_seconds = cache_watch.Seconds();
  sim::SimCacheStats stats = sim::GetSimCacheStats();

  // Structure-sharing + batched replay: the cached programs of the sweep
  // share interned skeletons (configs differing only numerically walk
  // identical instruction sequences), and ReplaySimProgramBatch groups
  // replays by skeleton so the arena's layout tables fill once per group.
  // Gates: batched results bit-identical to per-program replays, and the
  // batched pass allocation-free after warm-up.
  std::vector<std::shared_ptr<const sim::SimProgram>> batch_programs;
  for (const tuner::TuningTask& task : tasks) {
    for (size_t c = 0; c < task.space.size(); c += stride) {
      batch_programs.push_back(
          sim::CachedSimProgram(task.op, task.space[c], spec));
    }
  }
  std::vector<const sim::SimProgram*> batch_ptrs;
  for (const auto& p : batch_programs) batch_ptrs.push_back(p.get());

  sim::ReplayArena batch_arena;
  int batch_mismatches = 0;
  int batch_allocations = 0;
  std::vector<sim::KernelTiming> singly(batch_ptrs.size());
  obs::Stopwatch batch_watch;
  for (size_t i = 0; i < batch_ptrs.size(); ++i) {
    singly[i] = sim::ReplaySimProgram(*batch_ptrs[i], &batch_arena);
  }
  double replay_single_seconds = batch_watch.Seconds();
  std::vector<sim::KernelTiming> warm_batch =
      sim::ReplaySimProgramBatch(batch_ptrs, &batch_arena);
  size_t batch_capacity = batch_arena.CapacityBytes();
  batch_watch.Restart();
  std::vector<sim::KernelTiming> batched =
      sim::ReplaySimProgramBatch(batch_ptrs, &batch_arena);
  double replay_batched_seconds = batch_watch.Seconds();
  if (batch_arena.CapacityBytes() != batch_capacity) ++batch_allocations;
  for (size_t i = 0; i < batch_ptrs.size(); ++i) {
    if (!SameTiming(singly[i], batched[i]) ||
        !SameTiming(warm_batch[i], batched[i])) {
      if (++batch_mismatches <= 3) {
        std::fprintf(stderr, "BATCH MISMATCH at program %zu\n", i);
      }
    }
  }
  sim::SkeletonPoolStats pool = sim::GetSkeletonPoolStats();
  sim::SimCacheStats shared_stats = sim::GetSimCacheStats();
  double bytes_per_config =
      shared_stats.program_entries > 0
          ? static_cast<double>(shared_stats.program_bytes +
                                shared_stats.skeleton_bytes) /
                static_cast<double>(shared_stats.program_entries)
          : 0.0;
  double bytes_per_config_unshared =
      shared_stats.program_entries > 0
          ? static_cast<double>(shared_stats.program_bytes_unshared) /
                static_cast<double>(shared_stats.program_entries)
          : 0.0;
  double sharing_gain =
      bytes_per_config > 0.0 ? bytes_per_config_unshared / bytes_per_config
                             : 0.0;
  double batch_rate = replay_batched_seconds > 0.0
                          ? static_cast<double>(batch_ptrs.size()) /
                                replay_batched_seconds
                          : 0.0;
  double batch_speedup = replay_batched_seconds > 0.0
                             ? replay_single_seconds / replay_batched_seconds
                             : 0.0;

  bool deterministic = mismatches == 0 && timeline_mismatches == 0 &&
                       BitEqual(interp_checksum, replay_checksum);
  double interp_rate = t_interp > 0.0 ? feasible / t_interp : 0.0;
  double replay_rate = t_replay > 0.0 ? feasible / t_replay : 0.0;
  double speedup = t_replay > 0.0 ? t_interp / t_replay : 0.0;
  unsigned hw = std::thread::hardware_concurrency();

  std::printf(
      "{\n"
      "  \"bench\": \"sim_throughput\",\n"
      "  \"quick\": %s,\n"
      "  \"hardware_cores\": %u,\n"
      "  \"operators\": %zu,\n"
      "  \"configs\": %d,\n"
      "  \"feasible\": %d,\n"
      "  \"interpreter_seconds\": %.4f,\n"
      "  \"interpreter_configs_per_sec\": %.1f,\n"
      "  \"trace_compile_seconds\": %.4f,\n"
      "  \"replay_seconds\": %.4f,\n"
      "  \"replay_configs_per_sec\": %.1f,\n"
      "  \"speedup\": %.2f,\n"
      "  \"deterministic\": %s,\n"
      "  \"timing_mismatches\": %d,\n"
      "  \"timeline_samples\": %d,\n"
      "  \"timeline_mismatches\": %d,\n"
      "  \"checksum_cycles\": %.17g,\n"
      "  \"warm_replay_heap_allocations\": %d,\n"
      "  \"arena_capacity_bytes\": %zu,\n"
      "  \"cache\": {\n"
      "    \"cold_pass_seconds\": %.4f,\n"
      "    \"warm_pass_seconds\": %.4f,\n"
      "    \"timing_hits\": %llu,\n"
      "    \"timing_misses\": %llu,\n"
      "    \"timing_entries\": %llu,\n"
      "    \"program_hits\": %llu,\n"
      "    \"program_misses\": %llu,\n"
      "    \"program_entries\": %llu,\n"
      "    \"program_bytes\": %llu,\n"
      "    \"program_skeletons\": %llu,\n"
      "    \"skeleton_bytes\": %llu,\n"
      "    \"program_bytes_unshared\": %llu,\n"
      "    \"bytes_per_config\": %.1f,\n"
      "    \"bytes_per_config_unshared\": %.1f,\n"
      "    \"skeleton_sharing_gain\": %.2f\n"
      "  },\n"
      "  \"batched_replay\": {\n"
      "    \"programs\": %zu,\n"
      "    \"single_seconds\": %.4f,\n"
      "    \"batched_seconds\": %.4f,\n"
      "    \"batched_configs_per_sec\": %.1f,\n"
      "    \"batch_speedup\": %.2f,\n"
      "    \"mismatches\": %d,\n"
      "    \"warm_heap_allocations\": %d,\n"
      "    \"pool_interns\": %llu,\n"
      "    \"pool_shared\": %llu,\n"
      "    \"pool_skeletons\": %llu\n"
      "  }\n"
      "}\n",
      quick ? "true" : "false", hw == 0 ? 1 : hw, tasks.size(), configs,
      feasible, t_interp, interp_rate, t_compile, t_replay, replay_rate,
      speedup, deterministic ? "true" : "false", mismatches,
      timeline_samples, timeline_mismatches, interp_checksum,
      warm_replay_allocations, arena.CapacityBytes(), cache_cold_seconds,
      cache_warm_seconds, static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.entries),
      static_cast<unsigned long long>(stats.program_hits),
      static_cast<unsigned long long>(stats.program_misses),
      static_cast<unsigned long long>(stats.program_entries),
      static_cast<unsigned long long>(stats.program_bytes),
      static_cast<unsigned long long>(shared_stats.program_skeletons),
      static_cast<unsigned long long>(shared_stats.skeleton_bytes),
      static_cast<unsigned long long>(shared_stats.program_bytes_unshared),
      bytes_per_config, bytes_per_config_unshared, sharing_gain,
      batch_ptrs.size(), replay_single_seconds, replay_batched_seconds,
      batch_rate, batch_speedup, batch_mismatches, batch_allocations,
      static_cast<unsigned long long>(pool.interns),
      static_cast<unsigned long long>(pool.shared),
      static_cast<unsigned long long>(pool.skeletons));

  // Gate only on correctness plus the structural claims downstream code
  // relies on: bit-identical results (per-program and batched), no
  // hot-path heap growth, a replay path that actually ran, and real
  // skeleton sharing across the sweep (>= 4x bytes-per-config). Never on
  // wall time.
  bool ok = deterministic && warm_replay_allocations == 0 && feasible > 0 &&
            replay_rate > 0.0 && batch_mismatches == 0 &&
            batch_allocations == 0 && sharing_gain >= 4.0;
  return ok ? 0 : 1;
}
