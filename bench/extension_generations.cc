// Extension study: automatic pipelining across GPU generations.
//
// The paper motivates pipelining by the widening gap between Tensor-Core
// throughput and memory bandwidth; it evaluates on Ampere because earlier
// GPUs lack asynchronous copies. This bench runs the same automatic flow
// on three device models:
//   - Volta-like : no cp.async. Detection (rule 1) refuses shared-memory
//     pipelining; only register-level pipelining survives.
//   - Ampere     : the paper's platform (cp.async).
//   - Hopper-like: TMA-style bulk copies, ~3x compute per byte of
//     bandwidth — pipelining becomes more valuable, not less.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "target/gpu_spec.h"
#include "workloads/ops.h"

using namespace alcop;  // NOLINT(build/namespaces) - bench driver

namespace {

double PipeliningSpeedup(const schedule::GemmOp& op,
                         const target::GpuSpec& spec) {
  tuner::TuningTask task = tuner::MakeSimulatorTask(op, spec);
  tuner::TuningResult exhaustive = tuner::ExhaustiveSearch(task);
  double baseline = bench::BestWhere(task, exhaustive, [](const auto& c) {
    return c.smem_stages == 1 && c.reg_stages == 1;
  });
  double alcop = exhaustive.BestInFirstK(exhaustive.trials.size());
  return baseline / alcop;
}

}  // namespace

int main() {
  std::printf("Extension: automatic pipelining speedup across GPU "
              "generations (exhaustive schedules)\n\n");
  std::printf("%-16s | %12s %12s %12s\n", "operator", "volta-like", "ampere",
              "hopper-like");
  bench::PrintRule(60);

  target::GpuSpec volta = target::VoltaLikeSpec();
  target::GpuSpec ampere = target::AmpereSpec();
  target::GpuSpec hopper = target::HopperLikeSpec();

  double log_sum[3] = {0, 0, 0};
  int count = 0;
  for (const char* name : {"MM_BERT_QKV", "MM_BERT_FC2", "MM_RN50_FC",
                           "BMM_BERT_SV", "Conv_VGG_3x3"}) {
    const schedule::GemmOp& op = workloads::FindOp(name);
    double speedup[3] = {PipeliningSpeedup(op, volta),
                         PipeliningSpeedup(op, ampere),
                         PipeliningSpeedup(op, hopper)};
    std::printf("%-16s | %11.2fx %11.2fx %11.2fx\n", name, speedup[0],
                speedup[1], speedup[2]);
    for (int i = 0; i < 3; ++i) log_sum[i] += std::log(speedup[i]);
    ++count;
  }

  bench::PrintRule(60);
  std::printf("%-16s | %11.2fx %11.2fx %11.2fx   (geomean)\n", "average",
              std::exp(log_sum[0] / count), std::exp(log_sum[1] / count),
              std::exp(log_sum[2] / count));
  std::printf("\nexpected shape: ~1.0x on Volta-like hardware (rule 1 "
              "refuses shared-memory pipelining without cp.async),\n"
              "substantial on Ampere, and at least as large on the "
              "Hopper-like device (higher compute-to-byte ratio).\n");
  return 0;
}
